"""Durable campaigns: journal, checkpoint/resume, breaker, graceful drain.

Interrupts are injected deterministically through
:class:`~repro.faults.plan.WorkerFaultPlan.interrupt_attempts` (fires once
per process per spec), so every kill-mid-campaign shape here resumes and
converges in-process; the out-of-process SIGKILL scenario lives in
``tools/chaos_smoke.py``.
"""

from __future__ import annotations

import json
import os
import signal

import pytest

from repro.config import scaled_config
from repro.errors import SimulationError
from repro.faults import FaultPlan, WorkerFaultPlan
from repro.sim import (
    RunFailure,
    RunResult,
    RunSpec,
    run_many,
    spec_fingerprint,
)
from repro.sim.durable import (
    CampaignJournal,
    _DrainSupervisor,
    breaker_family,
    cache_stats,
    derive_campaign_id,
    list_campaigns,
    quarantine_entries,
    replay,
    results_to_canonical_json,
    resume_campaign,
    run_durable,
)
from repro.sim.parallel import RUNNER_METRICS
from repro.sim.rollup import list_rollups


def tiny_config(**kwargs):
    kwargs.setdefault("time_scale", 20_000.0)
    kwargs.setdefault("quantum_cycles", 3_000)
    return scaled_config(**kwargs)


def plain_spec(workloads, **config_kwargs):
    return RunSpec(tuple(workloads), tiny_config(**config_kwargs))


def chaos_spec(workloads, **worker_kwargs):
    config = tiny_config().with_faults(
        FaultPlan(worker=WorkerFaultPlan(**worker_kwargs))
    )
    return RunSpec(tuple(workloads), config)


def campaign_id_of(specs):
    return derive_campaign_id([spec_fingerprint(s) for s in specs])


def kinds(results):
    return [r.kind if isinstance(r, RunFailure) else "ok" for r in results]


class TestJournal:
    def test_append_and_replay_round_trip(self, tmp_path):
        journal = CampaignJournal(tmp_path, "cafe0000")
        journal.append({"type": "lease", "fingerprint": "f1", "pid": 7})
        journal.append({"type": "completed", "fingerprint": "f1"})
        records = journal.records()
        assert [r["type"] for r in records] == ["lease", "completed"]
        assert [r["seq"] for r in records] == [0, 1]
        # a second journal instance continues the sequence
        again = CampaignJournal(tmp_path, "cafe0000")
        again.append({"type": "seal", "status": "complete"})
        assert [r["seq"] for r in again.records()] == [0, 1, 2]

    def test_unreadable_record_is_skipped_and_counted(self, tmp_path):
        journal = CampaignJournal(tmp_path, "cafe0001")
        journal.append({"type": "lease", "fingerprint": "f1", "pid": 7})
        (journal.root / f"00000001.{os.getpid()}.json").write_text("{torn")
        before = RUNNER_METRICS.counters.get("journal.unreadable_records", 0)
        assert [r["type"] for r in journal.records()] == ["lease"]
        assert (
            RUNNER_METRICS.counters["journal.unreadable_records"]
            == before + 1
        )

    def test_replay_without_submit_is_loud(self, tmp_path):
        journal = CampaignJournal(tmp_path, "cafe0002")
        journal.append({"type": "lease", "fingerprint": "f1", "pid": 7})
        with pytest.raises(SimulationError, match="no submit record"):
            replay(journal)

    def test_heartbeat_freshness(self, tmp_path):
        journal = CampaignJournal(tmp_path, "cafe0003")
        assert not journal.heartbeat_fresh(1234, 60.0)
        journal.heartbeat(1234, beats=0)
        assert journal.heartbeat_fresh(1234, 60.0)
        assert not journal.heartbeat_fresh(1234, 0.0)

    def test_campaign_id_is_deterministic(self):
        specs = [plain_spec(("gcc", "swim")), plain_spec(("gzip", "mcf"))]
        assert campaign_id_of(specs) == campaign_id_of(specs)
        assert campaign_id_of(specs) != campaign_id_of(specs[::-1])
        assert len(campaign_id_of(specs)) == 16


class TestRunDurable:
    def test_complete_campaign_matches_run_many(self, tmp_path):
        specs = [plain_spec(("gcc", "swim")), plain_spec(("gzip", "mcf"))]
        durable = run_durable(specs, cache_dir=tmp_path / "a", jobs=1)
        plain = run_many(specs, jobs=1, cache_dir=tmp_path / "b")
        assert results_to_canonical_json(durable) == (
            results_to_canonical_json(plain)
        )
        rows = list_campaigns(tmp_path / "a")
        assert len(rows) == 1 and rows[0]["sealed"] == "complete"
        assert rows[0]["completed"] == 2

    def test_rerun_with_existing_journal_is_an_implicit_resume(
        self, tmp_path
    ):
        specs = [plain_spec(("gcc", "swim")), plain_spec(("gzip", "mcf"))]
        first = run_durable(specs, cache_dir=tmp_path, jobs=1)
        again = run_durable(specs, cache_dir=tmp_path, jobs=1)
        assert results_to_canonical_json(first) == (
            results_to_canonical_json(again)
        )

    def test_different_manifest_same_id_is_refused(self, tmp_path):
        specs = [plain_spec(("gcc", "swim"))]
        run_durable(specs, campaign_id="pinned", cache_dir=tmp_path, jobs=1)
        with pytest.raises(SimulationError, match="different manifest"):
            run_durable(
                [plain_spec(("gzip", "mcf"))],
                campaign_id="pinned", cache_dir=tmp_path, jobs=1,
            )

    def test_needs_a_cache_dir(self):
        with pytest.raises(SimulationError, match="cache_dir"):
            run_durable([plain_spec(("gcc", "swim"))], cache_dir=None)

    def test_duplicate_specs_share_one_execution(self, tmp_path):
        spec = plain_spec(("gcc", "swim"))
        results = run_durable([spec, spec], cache_dir=tmp_path, jobs=1)
        assert results[0] == results[1]
        assert list_campaigns(tmp_path)[0]["slots"] == 2
        assert list_campaigns(tmp_path)[0]["specs"] == 1


class TestDrainAndResume:
    def test_interrupt_drains_to_resumable_then_resume_is_byte_identical(
        self, tmp_path
    ):
        specs = [
            plain_spec(("gcc", "swim")),
            chaos_spec(("gzip", "mcf"), interrupt_attempts=1),
            plain_spec(("vpr", "art")),
        ]
        campaign = campaign_id_of(specs)
        partial = run_durable(
            specs, cache_dir=tmp_path / "k", jobs=1, wave_size=1,
            raise_on_error=False,
        )
        assert kinds(partial) == ["ok", "interrupted", "interrupted"]
        assert list_campaigns(tmp_path / "k")[0]["sealed"] == "resumable"
        assert list_rollups(tmp_path / "k") == []

        resumed = resume_campaign(
            campaign, cache_dir=tmp_path / "k", jobs=1, raise_on_error=False
        )
        assert kinds(resumed) == ["ok", "ok", "ok"]
        # hook already fired for these fingerprints in this process, so the
        # clean run really is uninterrupted
        clean = run_durable(
            specs, cache_dir=tmp_path / "c", jobs=1, raise_on_error=False
        )
        assert results_to_canonical_json(resumed) == (
            results_to_canonical_json(clean)
        )

    def test_interrupted_seal_raises_keyboard_interrupt_by_default(
        self, tmp_path
    ):
        specs = [chaos_spec(("gcc", "swim"), interrupt_attempts=1)]
        with pytest.raises(KeyboardInterrupt):
            run_durable(specs, cache_dir=tmp_path, jobs=1)
        assert list_campaigns(tmp_path)[0]["sealed"] == "resumable"
        drained = RUNNER_METRICS.counters.get("runner.campaign_drained", 0)
        assert drained >= 1

    def test_resume_verifies_cache_and_redispatches_divergence(
        self, tmp_path
    ):
        specs = [plain_spec(("gcc", "swim")), plain_spec(("gzip", "mcf"))]
        campaign = campaign_id_of(specs)
        first = run_durable(specs, cache_dir=tmp_path, jobs=1)
        # corrupt one completed entry behind the journal's back
        key = spec_fingerprint(specs[0])
        (tmp_path / f"{key}.json").write_text("{torn")
        before = RUNNER_METRICS.counters.get(
            "runner.campaign_reverify_missing", 0
        )
        resumed = resume_campaign(campaign, cache_dir=tmp_path, jobs=1)
        assert results_to_canonical_json(first) == (
            results_to_canonical_json(resumed)
        )
        assert RUNNER_METRICS.counters[
            "runner.campaign_reverify_missing"
        ] == before + 1
        # the corrupt entry was quarantined by the checked reader
        assert (tmp_path / "quarantine" / f"{key}.json").exists()

    def test_dead_pid_lease_is_reclaimed(self, tmp_path):
        specs = [plain_spec(("gcc", "swim"))]
        campaign = campaign_id_of(specs)
        run_durable(specs, cache_dir=tmp_path, jobs=1)
        journal = CampaignJournal(tmp_path, campaign)
        dead = 2 ** 22 + 1  # beyond any default pid_max
        journal.append(
            {"type": "lease",
             "fingerprint": spec_fingerprint(specs[0]), "pid": dead}
        )
        before = RUNNER_METRICS.counters.get("runner.campaign_reclaimed", 0)
        resume_campaign(campaign, cache_dir=tmp_path, jobs=1)
        assert (
            RUNNER_METRICS.counters["runner.campaign_reclaimed"]
            == before + 1
        )
        assert replay(journal).leases == {}

    def test_live_foreign_lease_refuses_resume(self, tmp_path):
        specs = [plain_spec(("gcc", "swim"))]
        campaign = campaign_id_of(specs)
        run_durable(specs, cache_dir=tmp_path, jobs=1)
        journal = CampaignJournal(tmp_path, campaign)
        journal.append(
            {"type": "lease",
             "fingerprint": spec_fingerprint(specs[0]), "pid": 1}
        )
        journal.heartbeat(1, beats=0)  # fresh heartbeat for live pid 1
        with pytest.raises(SimulationError, match="still being driven"):
            resume_campaign(campaign, cache_dir=tmp_path, jobs=1)
        # a stale heartbeat makes the same lease reclaimable
        results = resume_campaign(
            campaign, cache_dir=tmp_path, jobs=1, lease_stale_s=0.0
        )
        assert kinds(results) == ["ok"]

    def test_unknown_campaign_is_loud_and_prefix_matches(self, tmp_path):
        specs = [plain_spec(("gcc", "swim"))]
        run_durable(specs, cache_dir=tmp_path, jobs=1)
        campaign = campaign_id_of(specs)
        with pytest.raises(SimulationError, match="no campaign journal"):
            resume_campaign("feedface", cache_dir=tmp_path)
        assert kinds(
            resume_campaign(campaign[:6], cache_dir=tmp_path, jobs=1)
        ) == ["ok"]


class TestCircuitBreaker:
    def failing_campaign(self, tmp_path):
        specs = [
            chaos_spec(("gzip", "gzip"), fail_attempts=5),
            RunSpec(
                ("gzip", "gzip"),
                tiny_config(seed=7).with_faults(
                    FaultPlan(worker=WorkerFaultPlan(fail_attempts=5))
                ),
            ),
            plain_spec(("gcc", "swim")),
        ]
        results = run_durable(
            specs, cache_dir=tmp_path, jobs=1, wave_size=1,
            raise_on_error=False,
        )
        return specs, results

    def test_terminal_failure_trips_family_and_skips_siblings(
        self, tmp_path
    ):
        before = RUNNER_METRICS.counters.get("runner.breaker_trips", 0)
        specs, results = self.failing_campaign(tmp_path)
        assert kinds(results) == ["error", "breaker_open", "ok"]
        assert "breaker is open" in results[1].error
        assert RUNNER_METRICS.counters["runner.breaker_trips"] == before + 1
        assert breaker_family(specs[0]) == breaker_family(specs[1])
        assert breaker_family(specs[0]) != breaker_family(specs[2])
        assert list_campaigns(tmp_path)[0]["breakers"] == [
            breaker_family(specs[0])
        ]

    def test_resume_keeps_breaker_open_without_force(self, tmp_path):
        specs, _ = self.failing_campaign(tmp_path)
        resumed = resume_campaign(
            campaign_id_of(specs), cache_dir=tmp_path, jobs=1,
            raise_on_error=False,
        )
        assert kinds(resumed) == ["error", "breaker_open", "ok"]

    def test_force_recloses_breaker_and_redispatches(self, tmp_path):
        specs, _ = self.failing_campaign(tmp_path)
        resumed = resume_campaign(
            campaign_id_of(specs), cache_dir=tmp_path, jobs=1,
            force=True, retries=5, raise_on_error=False,
        )
        assert kinds(resumed) == ["ok", "ok", "ok"]
        assert list_campaigns(tmp_path)[0]["breakers"] == []


class TestDrainSupervisor:
    def test_sigterm_translates_to_keyboard_interrupt_once(self):
        supervisor = _DrainSupervisor()
        previous = signal.getsignal(signal.SIGTERM)
        supervisor.install()
        try:
            with pytest.raises(KeyboardInterrupt, match="drain requested"):
                os.kill(os.getpid(), signal.SIGTERM)
            assert supervisor.draining
            # the handler restored the previous disposition for signal #2
            assert signal.getsignal(signal.SIGTERM) == previous
        finally:
            supervisor.uninstall()
            signal.signal(signal.SIGTERM, previous)
        assert signal.getsignal(signal.SIGTERM) == previous

    def test_interrupt_mid_campaign_seals_resumable(self, tmp_path):
        # The SIGTERM handler and the chaos interrupt hook share the
        # KeyboardInterrupt drain machinery; this pins the seal and
        # partial-result contract downstream of either entry point.  The
        # workload mix is distinct from every other interrupt test: the
        # hook fires once per process per fingerprint.
        specs = [
            plain_spec(("gcc", "swim")),
            chaos_spec(("twolf", "lucas"), interrupt_attempts=1),
        ]
        campaign = campaign_id_of(specs)
        partial = run_durable(
            specs, cache_dir=tmp_path, jobs=1, wave_size=1,
            raise_on_error=False,
        )
        assert kinds(partial) == ["ok", "interrupted"]
        assert list_campaigns(tmp_path)[0]["sealed"] == "resumable"
        resumed = resume_campaign(campaign, cache_dir=tmp_path, jobs=1)
        assert kinds(resumed) == ["ok", "ok"]


class TestRunManyResumeParam:
    def test_resume_param_routes_to_durable_layer(self, tmp_path):
        specs = [chaos_spec(("vpr", "art"), interrupt_attempts=1)]
        campaign = campaign_id_of(specs)
        run_durable(
            specs, cache_dir=tmp_path, jobs=1, raise_on_error=False
        )
        results = run_many(
            [], resume=campaign, cache_dir=tmp_path, jobs=1,
            raise_on_error=False,
        )
        assert kinds(results) == ["ok"]

    def test_resume_param_rejects_specs(self, tmp_path):
        with pytest.raises(SimulationError, match="empty spec list"):
            run_many(
                [plain_spec(("gcc", "swim"))],
                resume="cafe", cache_dir=tmp_path,
            )


class TestCacheInspection:
    def test_cache_stats_counts_everything(self, tmp_path):
        specs = [plain_spec(("gcc", "swim")), plain_spec(("gzip", "mcf"))]
        run_durable(specs, cache_dir=tmp_path, jobs=1)
        (tmp_path / "bogus.json").write_text("{torn")
        stats = cache_stats(tmp_path)
        assert stats["entries"] == 3 and stats["unreadable"] == 1
        assert stats["kinds"] == {"run": 2}
        assert stats["format_versions"] == {"1": 2}
        assert stats["rollups"] == 1 and stats["campaigns"] == 1
        assert stats["bytes"] > 0
        assert cache_stats(tmp_path / "missing")["entries"] == 0

    def test_quarantine_reasons_are_rederived(self, tmp_path):
        spec = plain_spec(("gcc", "swim"))
        key = spec_fingerprint(spec)
        quarantine = tmp_path / "quarantine"
        quarantine.mkdir()
        (quarantine / f"{key}.json").write_text("{torn")
        (quarantine / "deadbeef.json").write_text(
            json.dumps({"fingerprint": "something_else", "kind": "run"})
        )
        (quarantine / "feedc0de.json").write_text(
            json.dumps({"fingerprint": "feedc0de", "kind": "run",
                        "result": {"format_version": 99}})
        )
        reasons = {e["file"]: e["reason"] for e in quarantine_entries(tmp_path)}
        assert reasons == {
            f"{key}.json": "unreadable",
            "deadbeef.json": "fingerprint_mismatch",
            "feedc0de.json": "bad_shape",
        }


class TestCanonicalJson:
    def test_wall_seconds_is_normalized_out(self, tmp_path):
        spec = plain_spec(("gcc", "swim"))
        first = run_many([spec], jobs=1, cache=False)
        second = run_many([spec], jobs=1, cache=False)
        assert isinstance(first[0], RunResult)
        assert first[0].perf.wall_seconds != second[0].perf.wall_seconds
        assert results_to_canonical_json(first) == (
            results_to_canonical_json(second)
        )

    def test_failures_canonicalize_without_error_text(self):
        failure = RunFailure(
            workloads=("gcc", "swim"), fingerprint="f1",
            kind="interrupted", error="nondeterministic detail", attempts=2,
        )
        blob = results_to_canonical_json([failure])
        assert "interrupted" in blob and "nondeterministic" not in blob


class TestCampaignCli:
    def run_cli(self, *argv):
        from repro.cli import main

        return main(list(argv))

    def test_list_show_resume_and_cache(self, tmp_path, capsys):
        specs = [
            plain_spec(("gcc", "swim")),
            # distinct mix: the interrupt hook fires once per process
            # per fingerprint, and other tests burned the common mixes
            chaos_spec(("eon", "apsi"), interrupt_attempts=1),
        ]
        campaign = campaign_id_of(specs)
        run_durable(
            specs, cache_dir=tmp_path, jobs=1, wave_size=1,
            raise_on_error=False,
        )
        assert self.run_cli(
            "campaign", "list", "--cache-dir", str(tmp_path)
        ) == 0
        assert "resumable" in capsys.readouterr().out

        assert self.run_cli(
            "campaign", "show", campaign[:8], "--cache-dir", str(tmp_path)
        ) == 0
        shown = json.loads(capsys.readouterr().out)
        assert shown["campaign"] == campaign and shown["slots"] == 2

        assert self.run_cli(
            "campaign", "resume", campaign, "--cache-dir", str(tmp_path),
            "--jobs", "1",
        ) == 0
        assert "2 of 2 slot(s) ok" in capsys.readouterr().out

        assert self.run_cli("cache", "--cache-dir", str(tmp_path)) == 0
        out = capsys.readouterr().out
        assert "campaign journals" in out and "rollups" in out

        assert self.run_cli(
            "cache", "--cache-dir", str(tmp_path), "--json"
        ) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["entries"] == 2 and stats["campaigns"] == 1

    def test_show_without_id_is_an_error(self, capsys):
        assert self.run_cli("campaign", "show") == 1
        assert "needs a campaign id" in capsys.readouterr().err

    def test_empty_listing(self, tmp_path, capsys):
        assert self.run_cli(
            "campaign", "list", "--cache-dir", str(tmp_path)
        ) == 0
        assert "no campaign journals" in capsys.readouterr().out
