"""Fast-path engine regressions: exact thermal stepping, clock skips, and
the parallel cached runner.

Every optimization in the fast-path engine claims *exactness* — same
statistics, orders of magnitude less work.  These tests pin each claim:

* the exponential propagator against the forward-Euler reference;
* :meth:`SMTCore.skip_cycles` preserving in-flight completion latencies;
* the idle fast-forward producing byte-identical pipeline state;
* :func:`run_many` returning identical results serial, parallel, and from
  the on-disk cache.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.blocks import INT_RF, NUM_BLOCKS
from repro.config import scaled_config
from repro.sim import ExperimentRunner, RunSpec, run_many, spec_fingerprint
from repro.sim.results import load_result, save_result
from repro.thermal import RCThermalModel
from repro.workloads import make_source


def tiny_config(policy: str = "stop_and_go", **kwargs):
    kwargs.setdefault("time_scale", 20_000.0)
    kwargs.setdefault("quantum_cycles", 6_000)
    return scaled_config(**kwargs).with_policy(policy)


class TestExactThermalStepping:
    """The closed-form propagator must track the Euler reference."""

    def heat_then_cool(self, model, stepper, spans):
        """Drive one heat-then-cool trace; returns block trajectories."""
        hot = [2.0] * NUM_BLOCKS
        hot[INT_RF] = 6.0
        idle = [0.05] * NUM_BLOCKS
        trajectory = []
        for index, dt in enumerate(spans):
            powers = hot if index < len(spans) // 2 else idle
            stepper(model, dt, powers)
            trajectory.append(model.temperatures())
        return np.asarray(trajectory)

    def test_matches_euler_within_tolerance(self):
        # Default-scale config, sensor-interval spans: the trajectory the
        # simulator actually integrates.  (At spans ≫ τ_block the *Euler*
        # side is the inaccurate one — its substep is pinned at τ_block/4 —
        # so longer jumps are checked against a refined Euler below.)
        config = scaled_config().thermal
        span = config.sensor_interval * config.seconds_per_cycle
        exact = RCThermalModel(config)
        euler = RCThermalModel(config)
        spans = [span] * 400
        a = self.heat_then_cool(exact, RCThermalModel.advance, spans)
        b = self.heat_then_cool(euler, RCThermalModel.advance_euler, spans)
        assert np.max(np.abs(a - b)) < 0.05
        # The heating phase must actually heat (guard against a vacuous pass).
        assert a[len(spans) // 2 - 1, INT_RF] > a[0, INT_RF] + 1.0

    def test_long_jump_matches_refined_euler(self):
        """A 20 ms single-call jump lands where a fine Euler says it should."""
        config = scaled_config().thermal
        exact = RCThermalModel(config)
        fine = RCThermalModel(config)
        powers = [2.0] * NUM_BLOCKS
        powers[INT_RF] = 6.0
        exact.advance(2e-2, powers)
        # 1/64-τ substeps: Euler error is first-order, so this reference is
        # ~16× tighter than the production advance_euler.
        substep = config.block_time_constant_s / 64.0
        steps = int(round(2e-2 / substep))
        for _ in range(steps):
            fine.advance_euler(substep, powers)
        assert np.max(np.abs(exact.temperatures() - fine.temperatures())) < 0.05

    def test_propagator_cache_reused_across_spans(self):
        model = RCThermalModel(tiny_config().thermal)
        powers = [1.0] * NUM_BLOCKS
        for _ in range(10):
            model.advance(1e-3, powers)
        assert model.perf_advances == 10
        assert model.perf_propagator_builds == 1
        model.advance(2e-3, powers)
        assert model.perf_propagator_builds == 2

    def test_single_long_span_equals_chained_short_spans(self):
        """Exactness property Euler lacks: E(a+b) == E(b)·E(a)."""
        config = tiny_config().thermal
        one = RCThermalModel(config)
        many = RCThermalModel(config)
        powers = [3.0] * NUM_BLOCKS
        one.advance(8e-3, powers)
        for _ in range(8):
            many.advance(1e-3, powers)
        assert np.allclose(one.temperatures(), many.temperatures(), atol=1e-9)


class TestSkipCycles:
    """A global stall shifts the completion wheel without losing latencies."""

    def make_core(self):
        config = tiny_config()
        sources = [
            make_source(name, tid, config.machine, config.thermal, config.seed)
            for tid, name in enumerate(["gcc", "swim"])
        ]
        from repro.pipeline import SMTCore

        core = SMTCore(config.machine, sources)
        for source in sources:
            source.prefill(core.hierarchy)
        return core

    def test_wheel_shift_preserves_inflight_latencies(self):
        core = self.make_core()
        core.run_cycles(200)
        assert core._wheel, "expected in-flight operations after warmup"
        before = {
            when - core.cycle: [u.seq for u in uops]
            for when, uops in core._wheel.items()
        }
        core.skip_cycles(137)
        after = {
            when - core.cycle: [u.seq for u in uops]
            for when, uops in core._wheel.items()
        }
        # Same remaining latency for the same uops: the stall froze the
        # clock, it did not age anything in flight.
        assert after == before
        assert core.perf_stall_skipped == 137

    def test_progress_resumes_after_skip(self):
        stalled = self.make_core()
        straight = self.make_core()
        straight.run_cycles(200)
        stalled.run_cycles(200)
        stalled.skip_cycles(1000)
        straight.run_cycles(500)
        stalled.run_cycles(500)
        assert [t.committed for t in stalled.threads] == [
            t.committed for t in straight.threads
        ]
        assert stalled.access_counts == straight.access_counts
        assert stalled.cycle == straight.cycle + 1000


class TestIdleFastForward:
    def test_bit_exact_against_stepped_execution(self):
        config = tiny_config()
        cores = []
        for disable_skip in (False, True):
            sources = [
                make_source(name, tid, config.machine, config.thermal, config.seed)
                for tid, name in enumerate(["gcc", "swim"])
            ]
            from repro.pipeline import SMTCore

            core = SMTCore(config.machine, sources)
            for source in sources:
                source.prefill(core.hierarchy)
            if disable_skip:
                core._idle_until = lambda cycle, limit: cycle
            cores.append(core)
        fast, slow = cores
        for _ in range(10):
            fast.run_cycles(1500)
            slow.run_cycles(1500)
            assert fast.cycle == slow.cycle
            assert fast.access_counts == slow.access_counts
            assert [t.committed for t in fast.threads] == [
                t.committed for t in slow.threads
            ]
        # The sweep is only meaningful if the fast core actually skipped.
        assert fast.perf_idle_skipped > 0
        assert slow.perf_idle_skipped == 0


class TestParallelCachedRunner:
    def test_fingerprint_sensitivity(self):
        config = tiny_config()
        base = RunSpec(("gcc", "swim"), config)
        assert spec_fingerprint(base) == spec_fingerprint(
            RunSpec(("gcc", "swim"), config)
        )
        assert spec_fingerprint(base) != spec_fingerprint(
            RunSpec(("swim", "gcc"), config)
        )
        assert spec_fingerprint(base) != spec_fingerprint(
            RunSpec(("gcc", "swim"), config.with_policy("sedation"))
        )
        assert spec_fingerprint(base) != spec_fingerprint(
            RunSpec(("gcc", "swim"), config, quantum_cycles=999)
        )

    def test_cache_round_trip_and_parallel_identity(self, tmp_path):
        specs = [
            RunSpec(("gcc", "swim"), tiny_config()),
            RunSpec(("gzip", "mcf"), tiny_config("sedation")),
        ]
        serial = run_many(specs, jobs=1, cache_dir=tmp_path)
        assert len(list(tmp_path.glob("*.json"))) == 2
        cached = run_many(specs, jobs=1, cache_dir=tmp_path)
        parallel = run_many(specs, jobs=2, cache=False)
        for a, b, c in zip(serial, cached, parallel, strict=True):
            assert a == b == c
        # Cached results carry the original run's perf counters.
        assert cached[0].perf is not None
        assert cached[0].perf.cycles == serial[0].perf.cycles

    def test_duplicate_specs_execute_once(self, tmp_path):
        spec = RunSpec(("gcc", "swim"), tiny_config())
        results = run_many([spec, spec], jobs=1, cache_dir=tmp_path)
        assert results[0] is results[1]

    def test_corrupt_cache_entry_is_a_miss(self, tmp_path):
        spec = RunSpec(("gcc", "swim"), tiny_config())
        key = spec_fingerprint(spec)
        (tmp_path / f"{key}.json").write_text("{not json")
        results = run_many([spec], jobs=1, cache_dir=tmp_path)
        assert results[0].cycles > 0

    def test_result_perf_serialization_round_trip(self, tmp_path):
        result = run_many([RunSpec(("gcc", "swim"), tiny_config())], jobs=1,
                          cache=False)[0]
        path = tmp_path / "result.json"
        save_result(result, path)
        loaded = load_result(path)
        assert loaded == result
        assert loaded.perf.to_dict() == result.perf.to_dict()


class TestExperimentRunnerBatching:
    def test_sweep_returns_only_requested_labels(self):
        runner = ExperimentRunner(tiny_config())
        runner.run("extra", ["gcc", "swim"])
        out = runner.sweep([("wanted", ["gzip", "mcf"], runner.base)])
        assert set(out) == {"wanted"}
        assert set(runner.results) == {"extra", "wanted"}

    def test_batch_matches_individual_runs(self, tmp_path):
        batched = ExperimentRunner(tiny_config(), jobs=2, cache_dir=tmp_path)
        one_by_one = ExperimentRunner(tiny_config())
        pairs = [("gcc", "swim"), ("gzip", "mcf")]
        out = batched.pair_many(pairs, policies=("stop_and_go",))
        for a, b in pairs:
            assert out[(a, b, "stop_and_go")] == one_by_one.pair(a, b)

    def test_solo_runs_via_registry_idle(self):
        runner = ExperimentRunner(tiny_config())
        result = runner.solo("gcc")
        assert result.workloads == ("gcc", "idle")
        assert result.threads[1].committed == 0
        assert result.threads[0].committed > 0


@pytest.mark.parametrize("name", ["idle"])
def test_registry_resolves_idle(name):
    config = tiny_config()
    source = make_source(name, 1, config.machine, config.thermal)
    assert source.thread_id == 1
