"""Fault-injection subsystem: plans, injectors, and end-to-end determinism.

The contract under test (docs/robustness.md): a ``FaultPlan`` is a pure,
picklable description; injectors draw only from domain-salted private RNGs;
the same plan + seed reproduces byte-identically; and every injection is
observable through telemetry.
"""

from __future__ import annotations

import pickle

import pytest

from repro.blocks import INT_RF, NUM_BLOCKS
from repro.config import scaled_config
from repro.errors import ConfigError
from repro.faults import (
    ActuatorFaultPlan,
    ActuatorInjector,
    AttackerFaultPlan,
    AttackerGate,
    FaultPlan,
    SamplerFaultInjector,
    SamplerFaultPlan,
    SensorFaultInjector,
    SensorFaultPlan,
    WorkerFaultPlan,
    domain_rng,
)
from repro.sim import Simulator, run_workloads
from repro.telemetry import (
    EventType,
    TelemetrySession,
    fault_injection_counts,
    summarize,
)
from repro.workloads import intermittent_plan


def tiny_config(policy: str = "sedation", **kwargs):
    kwargs.setdefault("time_scale", 20_000.0)
    kwargs.setdefault("quantum_cycles", 6_000)
    return scaled_config(**kwargs).with_policy(policy)


class TestPlanValidation:
    def test_unknown_sensor_mode_rejected(self):
        with pytest.raises(ConfigError):
            SensorFaultPlan(mode="melted")

    def test_rates_must_be_probabilities(self):
        with pytest.raises(ConfigError):
            SensorFaultPlan(mode="dropout", rate=1.5)
        with pytest.raises(ConfigError):
            SamplerFaultPlan(miss_rate=-0.1)

    def test_dropout_needs_rate(self):
        with pytest.raises(ConfigError):
            SensorFaultPlan(mode="dropout")

    def test_burst_needs_rate_and_sigma(self):
        with pytest.raises(ConfigError):
            SensorFaultPlan(mode="burst_noise", rate=0.1)
        with pytest.raises(ConfigError):
            SensorFaultPlan(mode="burst_noise", burst_sigma_k=5.0)

    def test_late_rate_needs_late_cycles(self):
        with pytest.raises(ConfigError):
            SamplerFaultPlan(late_rate=0.1)

    def test_empty_domain_plans_rejected(self):
        with pytest.raises(ConfigError):
            SamplerFaultPlan()
        with pytest.raises(ConfigError):
            ActuatorFaultPlan()

    def test_attacker_fraction_bounds(self):
        with pytest.raises(ConfigError):
            AttackerFaultPlan(on_fraction=0.0)
        with pytest.raises(ConfigError):
            AttackerFaultPlan(on_fraction=1.0)
        assert AttackerFaultPlan(period_cycles=1000).on_cycles == 500

    def test_worker_hang_needs_seconds(self):
        with pytest.raises(ConfigError):
            WorkerFaultPlan(hang_attempts=1)
        with pytest.raises(ConfigError):
            WorkerFaultPlan(crash_attempts=-1)

    def test_any_runtime_faults_excludes_worker_chaos(self):
        assert not FaultPlan().any_runtime_faults
        assert not FaultPlan(worker=WorkerFaultPlan(fail_attempts=1)).any_runtime_faults
        assert FaultPlan(sampler=SamplerFaultPlan(miss_rate=0.1)).any_runtime_faults

    def test_plan_pickles_and_rides_the_fingerprint(self):
        from repro.sim import RunSpec, spec_fingerprint

        plan = FaultPlan(
            seed=3,
            sensor=SensorFaultPlan(mode="dropout", rate=0.2),
            attacker=AttackerFaultPlan(),
        )
        assert pickle.loads(pickle.dumps(plan)) == plan
        clean = RunSpec(("gcc", "swim"), tiny_config())
        faulted = RunSpec(("gcc", "swim"), tiny_config().with_faults(plan))
        assert spec_fingerprint(clean) != spec_fingerprint(faulted)


class TestDomainRng:
    def test_streams_are_domain_salted_and_stable(self):
        a = domain_rng(7, "sensor")
        b = domain_rng(7, "sensor")
        c = domain_rng(7, "sampler")
        first = [a.random() for _ in range(8)]
        assert first == [b.random() for _ in range(8)]
        assert first != [c.random() for _ in range(8)]


class TestSensorInjector:
    def make(self, plan, seed=0):
        return SensorFaultInjector(plan, domain_rng(seed, "sensor"), NUM_BLOCKS)

    def test_block_ids_validated(self):
        with pytest.raises(ConfigError):
            self.make(SensorFaultPlan(mode="stuck_at", blocks=(NUM_BLOCKS,)))

    def test_stuck_at_freezes_first_reading(self):
        injector = self.make(SensorFaultPlan(mode="stuck_at", blocks=(INT_RF,)))
        temps = [300.0] * NUM_BLOCKS
        temps[INT_RF] = 350.0
        injector.apply(0, temps)
        temps[INT_RF] = 999.0
        injector.apply(50, temps)
        assert temps[INT_RF] == 350.0
        assert injector.faults_injected == 1  # onset event only

    def test_stuck_at_pinned_value_and_start_cycle(self):
        injector = self.make(
            SensorFaultPlan(mode="stuck_at", stuck_k=400.0, start_cycle=100)
        )
        temps = [300.0] * NUM_BLOCKS
        injector.apply(0, temps)
        assert temps[0] == 300.0  # healthy before onset
        injector.apply(100, temps)
        assert all(t == 400.0 for t in temps)

    def test_dropout_holds_last_reported(self):
        injector = self.make(
            SensorFaultPlan(mode="dropout", rate=1.0, start_cycle=25)
        )
        healthy = [300.0 + i for i in range(NUM_BLOCKS)]
        injector.apply(0, healthy)  # pre-onset: recorded as last reported
        later = [500.0] * NUM_BLOCKS
        injector.apply(50, later)  # every reading drops from here on
        assert later == healthy
        assert injector.faults_injected == 1

    def test_bias_drift_accumulates(self):
        injector = self.make(
            SensorFaultPlan(mode="bias_drift", bias_k_per_sample=1.0)
        )
        temps = [300.0] * NUM_BLOCKS
        injector.apply(0, temps)
        assert temps[0] == 301.0
        temps = [300.0] * NUM_BLOCKS
        injector.apply(50, temps)
        assert temps[0] == 302.0

    def test_burst_noise_perturbs_burst_len_readings(self):
        injector = self.make(
            SensorFaultPlan(
                mode="burst_noise", rate=1.0, burst_sigma_k=5.0, burst_len=2
            )
        )
        for cycle in (0, 50):
            temps = [300.0] * NUM_BLOCKS
            injector.apply(cycle, temps)
            assert any(t != 300.0 for t in temps)


class TestSamplerAndActuatorInjectors:
    def test_sampler_verdicts(self):
        always_miss = SamplerFaultInjector(
            SamplerFaultPlan(miss_rate=1.0), domain_rng(0, "sampler")
        )
        assert always_miss.on_tick(0) == ("miss", 0)
        always_late = SamplerFaultInjector(
            SamplerFaultPlan(late_rate=1.0, late_cycles=40),
            domain_rng(0, "sampler"),
        )
        assert always_late.on_tick(0) == ("ok", 40)
        assert always_miss.missed == 1 and always_late.late == 1

    def test_actuator_drop_swallows_command(self):
        injector = ActuatorInjector(
            ActuatorFaultPlan(fail_rate=1.0), domain_rng(0, "actuator")
        )
        fired = []
        injector.submit(0, "sedate", 1, INT_RF, lambda: fired.append(1))
        assert fired == [] and injector.dropped == 1

    def test_actuator_delay_lands_on_drain(self):
        injector = ActuatorInjector(
            ActuatorFaultPlan(delay_cycles=100), domain_rng(0, "actuator")
        )
        fired = []
        injector.submit(10, "sedate", 1, INT_RF, lambda: fired.append(1))
        injector.drain(50)
        assert fired == []
        injector.drain(110)
        assert fired == [1]

    def test_actuator_clear_forgets_pending(self):
        injector = ActuatorInjector(
            ActuatorFaultPlan(delay_cycles=100), domain_rng(0, "actuator")
        )
        fired = []
        injector.submit(0, "release", 0, None, lambda: fired.append(1))
        injector.clear()
        injector.drain(10_000)
        assert fired == []


class _CoreStub:
    def __init__(self):
        self.paused: dict[int, bool] = {}

    def set_paused(self, tid, paused):
        self.paused[tid] = paused


class TestAttackerGate:
    def test_schedule_and_toggles(self):
        plan = AttackerFaultPlan(period_cycles=100, on_fraction=0.5)
        gate = AttackerGate(plan, threads=(1,))
        core = _CoreStub()
        gate.bind(core)
        assert gate.is_on(0) and not gate.is_on(50)
        gate.on_boundary(0)
        assert core.paused == {}  # already on; no edge
        gate.on_boundary(60)
        assert core.paused == {1: True}
        gate.on_boundary(110)
        assert core.paused == {1: False}
        assert gate.transitions == 2

    def test_start_off_inverts_phase(self):
        plan = AttackerFaultPlan(period_cycles=100, start_on=False)
        gate = AttackerGate(plan, threads=(1,))
        assert not gate.is_on(0) and gate.is_on(60)

    def test_intermittent_plan_sizing(self):
        thermal = tiny_config().thermal
        plan = intermittent_plan(thermal, on_seconds=1e-3, off_seconds=3e-3)
        assert plan.period_cycles == thermal.cycles_from_seconds(4e-3)
        assert plan.on_cycles == pytest.approx(
            thermal.cycles_from_seconds(1e-3), abs=1
        )
        from repro.errors import WorkloadError

        with pytest.raises(WorkloadError):
            intermittent_plan(thermal, on_seconds=0.0)


class TestEndToEnd:
    def full_plan(self, config):
        return FaultPlan(
            seed=5,
            sensor=SensorFaultPlan(mode="dropout", rate=0.2),
            sampler=SamplerFaultPlan(miss_rate=0.15, late_rate=0.1,
                                     late_cycles=120),
            actuator=ActuatorFaultPlan(fail_rate=0.3, delay_cycles=60),
            attacker=intermittent_plan(config.thermal),
        )

    def test_same_plan_reproduces_byte_identically(self):
        config = tiny_config()
        faulted = config.with_faults(self.full_plan(config))
        first = run_workloads(faulted, ["gzip", "variant2"])
        second = run_workloads(faulted, ["gzip", "variant2"])
        assert first == second

    def test_faults_change_the_outcome(self):
        config = tiny_config()
        clean = run_workloads(config, ["gzip", "variant2"])
        faulted = run_workloads(
            config.with_faults(self.full_plan(config)), ["gzip", "variant2"]
        )
        assert clean != faulted

    def test_clean_config_builds_no_controller(self):
        sim = Simulator(tiny_config(), workloads=["gzip", "variant2"])
        assert sim.faults is None
        worker_only = tiny_config().with_faults(
            FaultPlan(worker=WorkerFaultPlan(fail_attempts=1))
        )
        assert Simulator(worker_only, workloads=["gzip", "variant2"]).faults is None

    def test_injected_summary_counts(self):
        config = tiny_config()
        sim = Simulator(
            config.with_faults(self.full_plan(config)),
            workloads=["gzip", "variant2"],
        )
        sim.run()
        summary = sim.faults.injected_summary()
        assert summary["sensor"] > 0
        assert summary["sampler_missed"] > 0
        assert summary["attacker_transitions"] > 0

    def test_fault_events_reach_telemetry_and_summary(self):
        config = tiny_config()
        session = TelemetrySession()
        sim = Simulator(
            config.with_faults(self.full_plan(config)),
            workloads=["gzip", "variant2"],
            telemetry=session,
        )
        sim.run()
        events = session.bus.events()
        counts = fault_injection_counts(events)
        assert counts.get("fault_sensor", 0) > 0
        assert counts.get("fault_sampler.miss", 0) > 0
        assert any(e.type is EventType.ATTACKER_PHASE for e in events)
        assert "fault injection:" in summarize(events)

    def test_attacker_gate_pauses_fetch(self):
        config = tiny_config()
        # Off virtually the whole quantum: the attacker commits almost nothing.
        # start_on=False inverts the schedule: the on-window (99% of a
        # 2-quantum period) becomes the off-phase, spanning the whole run.
        plan = FaultPlan(
            attacker=AttackerFaultPlan(
                period_cycles=config.quantum_cycles * 2,
                on_fraction=0.99,
                start_on=False,
            )
        )
        running = run_workloads(config, ["gzip", "variant2"])
        paused = run_workloads(config.with_faults(plan), ["gzip", "variant2"])
        assert paused.threads[1].committed < running.threads[1].committed * 0.2
