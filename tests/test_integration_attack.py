"""End-to-end attack/defense integration tests.

These pin the paper's qualitative results at a reduced quantum so the suite
stays fast; the benchmark harness reproduces the full figures.  A higher
time-scale preset is used (thermal transients compressed harder), which keeps
every heat-stroke phenomenon inside a ~60 k-cycle quantum.
"""

import dataclasses

import pytest

from repro.blocks import INT_RF
from repro.config import scaled_config
from repro.sim import ExperimentRunner, run_workloads

CFG = scaled_config(time_scale=4000.0, quantum_cycles=100_000)


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(CFG)


@pytest.fixture(scope="module")
def solo(runner):
    return runner.solo("gzip", policy="stop_and_go")


@pytest.fixture(scope="module")
def attacked(runner):
    return runner.pair("gzip", "variant2", policy="stop_and_go")


@pytest.fixture(scope="module")
def defended(runner):
    return runner.pair("gzip", "variant2", policy="sedation")


class TestHeatStroke:
    def test_attack_causes_repeated_emergencies(self, solo, attacked):
        """Figure 4's shape: the attack multiplies temperature emergencies."""
        assert attacked.emergencies >= 8
        assert attacked.emergencies >= 4 * max(1, solo.emergencies)

    def test_emergencies_are_at_the_register_file(self, attacked):
        assert attacked.emergencies_at(INT_RF) == attacked.emergencies

    def test_attack_severely_degrades_victim(self, solo, attacked):
        """Figure 5's shape: severe IPC loss under stop-and-go."""
        assert attacked.threads[0].ipc < 0.65 * solo.threads[0].ipc

    def test_victim_spends_significant_fraction_cooling(self, attacked):
        """Figure 6's shape: heat stroke converts execution into stalls."""
        assert attacked.threads[0].cooling_fraction > 0.08

    def test_attack_needs_realistic_packaging(self, runner, attacked):
        """With the ideal sink the same kernel causes no emergencies and
        less damage than under realistic packaging: the thermal component is
        what distinguishes heat stroke from ordinary SMT sharing, and
        variant2 shares far less aggressively than variant1."""
        ideal = runner.pair("gzip", "variant2", policy="ideal", ideal_sink=True)
        v1_ideal = runner.pair("gzip", "variant1", policy="ideal", ideal_sink=True)
        assert ideal.emergencies == 0
        assert ideal.threads[0].ipc > attacked.threads[0].ipc
        assert ideal.threads[0].ipc > 1.5 * v1_ideal.threads[0].ipc

    def test_variant3_is_weaker_than_variant2(self, runner, solo, attacked):
        v3 = runner.pair("gzip", "variant3", policy="stop_and_go")
        damage_v2 = solo.threads[0].ipc - attacked.threads[0].ipc
        damage_v3 = solo.threads[0].ipc - v3.threads[0].ipc
        assert 0 < damage_v3 < damage_v2

    def test_variant1_monopolizes_fetch_even_with_ideal_sink(self, runner):
        """The ICOUNT side effect the paper isolates with variant1."""
        solo_ideal = runner.solo("gzip", policy="ideal", ideal_sink=True)
        v1_ideal = runner.pair("gzip", "variant1", policy="ideal", ideal_sink=True)
        assert v1_ideal.threads[0].ipc < 0.6 * solo_ideal.threads[0].ipc


class TestSelectiveSedation:
    def test_sedation_restores_victim_ipc(self, runner, solo, attacked, defended):
        """The paper's central result: sedation recovers the attack's
        thermal damage.  In this model a sedated-then-released attacker
        still competes as an ordinary co-runner part of the time, so the
        reference point is the ideal-sink pairing (pure sharing cost)."""
        ideal = runner.pair("gzip", "variant2", policy="ideal", ideal_sink=True)
        assert defended.threads[0].ipc > 0.9 * ideal.threads[0].ipc
        assert defended.threads[0].ipc > 1.25 * attacked.threads[0].ipc

    def test_sedation_suppresses_emergencies(self, solo, defended):
        assert defended.emergencies <= solo.emergencies + 2

    def test_attacker_spends_substantial_time_sedated(self, defended):
        """Figure 6, fourth bar: variant2 under sedation (the paper's model
        holds the attacker sedated ~85% of the quantum; ours releases at the
        lower threshold sooner — see EXPERIMENTS.md deviations)."""
        assert defended.threads[1].sedated_fraction > 0.15

    def test_victim_is_never_sedated(self, defended):
        assert defended.threads[0].sedated_fraction == 0.0

    def test_sedation_identified_the_right_thread(self, runner):
        import repro.sim.simulator as simulator_module
        from repro.sim import Simulator

        sim = Simulator(CFG.with_policy("sedation"), workloads=["gzip", "variant2"])
        sim.run()
        counts = sim.reports.sedation_counts_by_thread()
        assert counts.get(1, 0) >= 1
        assert counts.get(0, 0) == 0

    def test_sedation_beats_stop_and_go(self, attacked, defended):
        assert defended.threads[0].ipc > 1.2 * attacked.threads[0].ipc


class TestNoFalsePositives:
    def test_spec_pair_unaffected_by_sedation(self, runner):
        """§5 result (7): SPEC-only pairs run the same with and without
        selective sedation — no false-positive cost."""
        base = runner.pair("gcc", "swim", policy="stop_and_go")
        with_sedation = runner.pair("gcc", "swim", policy="sedation")
        for tid in (0, 1):
            assert with_sedation.threads[tid].ipc == pytest.approx(
                base.threads[tid].ipc, rel=0.12
            )

    def test_solo_program_never_sedated(self, runner):
        solo_sed = runner.solo("crafty", policy="sedation")
        assert solo_sed.threads[0].sedated_fraction == 0.0


class TestAccessRateEnvelopes:
    def test_variant1_flat_average_far_above_spec(self, runner):
        """Figure 3: variant1 ~10 accesses/cycle, widely separated."""
        v1 = runner.solo("variant1", policy="ideal", ideal_sink=True)
        assert v1.threads[0].access_rate(INT_RF) > 8.0

    def test_variant2_flat_average_far_below_its_burst(self, runner):
        """Figure 3's point: variant2's quantum average is a fraction of its
        burst rate, so flat-average policing under-estimates it (the paper's
        v2 hides at ~4; ours sits near the top of the SPEC envelope — see
        EXPERIMENTS.md deviations)."""
        v2 = runner.solo("variant2", policy="stop_and_go")
        v1 = runner.solo("variant1", policy="ideal", ideal_sink=True)
        assert v2.threads[0].access_rate(INT_RF) < 0.75 * v1.threads[0].access_rate(INT_RF)

    def test_variant3_flat_average_below_variant2(self, runner):
        v3 = runner.solo("variant3", policy="stop_and_go")
        v2 = runner.solo("variant2", policy="stop_and_go")
        assert v3.threads[0].access_rate(INT_RF) < v2.threads[0].access_rate(INT_RF)


class TestMultipleAttackers:
    def test_second_culprit_sedated_or_safety_net(self):
        """§3.2.2: with several power-density threads, sedation walks down
        the usage ranking; the stop-and-go safety net covers the rest."""
        machine = dataclasses.replace(CFG.machine, num_threads=3)
        config = dataclasses.replace(
            CFG.with_policy("sedation"), machine=machine
        )
        from repro.sim import Simulator

        sim = Simulator(config, workloads=["gcc", "variant2", "variant2"])
        result = sim.run()
        counts = sim.reports.sedation_counts_by_thread()
        attackers_sedated = counts.get(1, 0) + counts.get(2, 0)
        assert attackers_sedated >= 2
        assert counts.get(0, 0) == 0
        # The victim still makes progress.
        assert result.threads[0].committed > 0
