"""Assembler tests: syntax, labels, operand forms, and errors."""

import pytest

from repro.errors import AssemblyError
from repro.isa import OpClass, assemble, parse_register
from repro.isa.registers import FP_BASE, register_name


class TestRegisters:
    def test_parse_integer_register(self):
        assert parse_register("$5") == 5

    def test_parse_fp_register(self):
        assert parse_register("$f3") == FP_BASE + 3

    def test_round_trip_names(self):
        for reg in (0, 7, 31, FP_BASE, FP_BASE + 31):
            assert parse_register(register_name(reg)) == reg

    @pytest.mark.parametrize("bad", ["$32", "$f32", "x5", "$", "$fx", "$-1"])
    def test_rejects_malformed(self, bad):
        with pytest.raises(AssemblyError):
            parse_register(bad)

    def test_register_name_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            register_name(999)


class TestBasicForms:
    def test_three_operand_alu(self):
        program = assemble("addl $1, $2, $3")
        instr = program.at(0)
        assert instr.opcode == "addl"
        assert instr.dest == 1
        assert instr.srcs == (2, 3)

    def test_register_immediate_alu(self):
        instr = assemble("subl $1, $2, 7").at(0)
        assert instr.srcs == (2,)
        assert instr.imm == 7

    def test_li(self):
        instr = assemble("li $4, 0x10").at(0)
        assert instr.dest == 4
        assert instr.imm == 16

    def test_mov(self):
        instr = assemble("mov $4, $9").at(0)
        assert instr.dest == 4
        assert instr.srcs == (9,)

    def test_absolute_load(self):
        instr = assemble("ldq $4, 0x12340").at(0)
        assert instr.opclass is OpClass.LOAD
        assert instr.dest == 4
        assert instr.base is None
        assert instr.imm == 0x12340

    def test_displacement_load(self):
        instr = assemble("ldq $4, 16($5)").at(0)
        assert instr.base == 5
        assert instr.imm == 16
        assert instr.source_registers() == (5,)

    def test_store_sources_include_data_and_base(self):
        instr = assemble("stq $4, 8($5)").at(0)
        assert instr.opclass is OpClass.STORE
        assert instr.dest is None
        assert set(instr.source_registers()) == {4, 5}

    def test_fp_arithmetic(self):
        instr = assemble("addt $f1, $f2, $f3").at(0)
        assert instr.opclass is OpClass.FALU
        assert instr.dest == FP_BASE + 1

    def test_nop_and_halt(self):
        program = assemble("nop\nhalt")
        assert program.at(0).opcode == "nop"
        assert program.at(1).opcode == "halt"


class TestLabelsAndBranches:
    def test_paper_figure1_kernel_assembles(self):
        """The exact shape of the paper's Figure 1 listing."""
        program = assemble(
            """
            L$1:
                addl $1, $2, $3
                br L$1
            """
        )
        assert len(program) == 2
        branch = program.at(1)
        assert branch.opclass is OpClass.BRANCH
        assert branch.target == 0

    def test_forward_reference(self):
        program = assemble("br end\nnop\nend: halt")
        assert program.at(0).target == 2

    def test_conditional_branch_reads_register(self):
        instr = assemble("L: bne $20, L").at(0)
        assert instr.srcs == (20,)
        assert instr.target == 0

    def test_multiple_labels_one_line(self):
        program = assemble("A: B: nop")
        assert program.labels == {"A": 0, "B": 0}

    def test_label_address_lookup(self):
        program = assemble("nop\nHERE: halt")
        assert program.label_address("HERE") == 1

    def test_comments_are_stripped(self):
        program = assemble("# header\naddl $1, $2, $3  ; trailing\n")
        assert len(program) == 1

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblyError):
            assemble("A: nop\nA: nop")

    def test_undefined_label_rejected_with_line_number(self):
        with pytest.raises(AssemblyError) as excinfo:
            assemble("nop\nbr nowhere")
        assert "nowhere" in str(excinfo.value)

    def test_unknown_opcode_reports_line(self):
        with pytest.raises(AssemblyError) as excinfo:
            assemble("nop\nfrobnicate $1, $2, $3")
        assert "line 2" in str(excinfo.value)


class TestOperandErrors:
    @pytest.mark.parametrize(
        "source",
        [
            "addl $1, $2",  # too few
            "addl $1, $2, $3, $4",  # too many
            "ldq $4",  # missing address
            "br",  # missing target
            "nop $1",  # operands on nop
            "li $1, banana",  # bad immediate
            "beq L",  # missing source register
        ],
    )
    def test_malformed_operands(self, source):
        with pytest.raises(AssemblyError):
            assemble(source)


class TestListing:
    def test_listing_round_trips_through_assembler(self):
        source = """
        start:
            li   $20, 3
        P1:
            addl $1, $25, $26
            ldq  $4, 64($5)
            stq  $4, 0x80
            subl $20, $20, 1
            bne  $20, P1
            br   start
        """
        program = assemble(source)
        reassembled = assemble(program.listing())
        assert len(reassembled) == len(program)
        for index in range(len(program)):
            a, b = program.at(index), reassembled.at(index)
            assert (a.opcode, a.dest, a.srcs, a.imm, a.base, a.target) == (
                b.opcode,
                b.dest,
                b.srcs,
                b.imm,
                b.base,
                b.target,
            )
