"""Functional executor tests: semantics, control flow, memory, halting."""

import pytest

from repro.errors import ExecutionError
from repro.isa import ArchExecutor, assemble
from repro.isa.registers import ZERO_REG


def run_to_halt(source, max_steps=10_000):
    executor = ArchExecutor(assemble(source))
    steps = 0
    while not executor.halted and steps < max_steps:
        executor.step()
        steps += 1
    assert executor.halted, "program did not halt"
    return executor


class TestArithmetic:
    def test_add_chain(self):
        executor = run_to_halt("li $1, 5\nli $2, 7\naddl $3, $1, $2\nhalt")
        assert executor.registers[3] == 12

    def test_immediate_form(self):
        executor = run_to_halt("li $1, 5\naddl $2, $1, 10\nhalt")
        assert executor.registers[2] == 15

    @pytest.mark.parametrize(
        "op,a,b,expected",
        [
            ("subl", 9, 4, 5),
            ("mull", 6, 7, 42),
            ("and", 0b1100, 0b1010, 0b1000),
            ("or", 0b1100, 0b1010, 0b1110),
            ("xor", 0b1100, 0b1010, 0b0110),
            ("sll", 3, 2, 12),
            ("srl", 12, 2, 3),
            ("cmplt", 3, 5, 1),
            ("cmplt", 5, 3, 0),
        ],
    )
    def test_binary_ops(self, op, a, b, expected):
        executor = run_to_halt(f"li $1, {a}\nli $2, {b}\n{op} $3, $1, $2\nhalt")
        assert executor.registers[3] == expected

    def test_zero_register_reads_zero(self):
        executor = run_to_halt("li $31, 99\naddl $1, $31, 1\nhalt")
        assert executor.read_register(ZERO_REG) == 0
        assert executor.registers[1] == 1

    def test_mov_copies(self):
        executor = run_to_halt("li $1, 42\nmov $2, $1\nhalt")
        assert executor.registers[2] == 42


class TestControlFlow:
    def test_counted_loop(self):
        executor = run_to_halt(
            """
                li $1, 0
                li $2, 5
            loop:
                addl $1, $1, 1
                subl $2, $2, 1
                bne $2, loop
                halt
            """
        )
        assert executor.registers[1] == 5

    def test_beq_not_taken_falls_through(self):
        executor = run_to_halt("li $1, 1\nbeq $1, skip\nli $2, 7\nskip: halt")
        assert executor.registers[2] == 7

    def test_beq_taken_skips(self):
        executor = run_to_halt("li $1, 0\nbeq $1, skip\nli $2, 7\nskip: halt")
        assert executor.registers[2] == 0

    def test_blt_bge(self):
        executor = run_to_halt(
            "li $1, -3\nblt $1, neg\nli $2, 1\nhalt\nneg: li $2, 2\nhalt"
        )
        assert executor.registers[2] == 2

    def test_step_result_reports_taken_and_next_pc(self):
        executor = ArchExecutor(assemble("br target\nnop\ntarget: halt"))
        result = executor.step()
        assert result.taken is True
        assert result.next_pc == 2


class TestMemory:
    def test_store_then_load(self):
        executor = run_to_halt(
            "li $1, 123\nli $2, 0x100\nstq $1, 0($2)\nldq $3, 0($2)\nhalt"
        )
        assert executor.registers[3] == 123

    def test_uninitialized_load_returns_zero(self):
        executor = run_to_halt("ldq $1, 0x500\nhalt")
        assert executor.registers[1] == 0

    def test_effective_address_base_plus_displacement(self):
        executor = ArchExecutor(assemble("li $2, 0x100\nldq $1, 8($2)\nhalt"))
        executor.step()
        result = executor.step()
        assert result.address == 0x108

    def test_absolute_address(self):
        executor = ArchExecutor(assemble("ldq $1, 0x4000\nhalt"))
        assert executor.step().address == 0x4000


class TestHalting:
    def test_halt_sets_flag_and_freezes_pc(self):
        executor = ArchExecutor(assemble("halt"))
        result = executor.step()
        assert result.halted is True
        assert executor.halted is True

    def test_stepping_after_halt_raises(self):
        executor = ArchExecutor(assemble("halt"))
        executor.step()
        with pytest.raises(ExecutionError):
            executor.step()

    def test_pc_out_of_range_raises(self):
        executor = ArchExecutor(assemble("nop"))
        executor.step()
        with pytest.raises(ExecutionError):
            executor.step()

    def test_instruction_count(self):
        executor = run_to_halt("nop\nnop\nhalt")
        assert executor.instructions_executed == 3
