"""The repro.lint static analyzer: framework, rules, reporters, self-check.

Every rule gets three fixtures — a positive (the rule fires on its target
pattern), a negative (idiomatic code stays clean), and a suppressed
variant (``# repro: noqa(CODE)`` silences exactly that finding) — so the
self-check at the bottom ("``repro.lint src/`` is clean") stays meaningful:
a rule that detects nothing would fail its positive here first.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.lint import Finding, LintConfig, LintResult, run_lint
from repro.lint.engine import PARSE_ERROR_CODE
from repro.lint.findings import SuppressionMap
from repro.lint.report import render_json, render_rules, render_text

REPO_ROOT = Path(__file__).resolve().parent.parent


def lint_sources(
    tmp_path: Path, files: dict[str, str], select: tuple[str, ...] | None = None
) -> LintResult:
    """Write fixture files under tmp_path and lint the whole tree."""
    for relpath, source in files.items():
        path = tmp_path / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return run_lint([tmp_path], LintConfig(select=select))


def codes(result: LintResult) -> list[str]:
    return [finding.code for finding in result.findings]


# -- RPR001: determinism hazards ---------------------------------------------


class TestDeterminismRule:
    def test_global_random_flagged(self, tmp_path):
        result = lint_sources(tmp_path, {
            "sim/bad.py": """\
                import random
                def jitter():
                    return random.random()
                """,
        }, select=("RPR001",))
        assert codes(result) == ["RPR001"]
        assert "process-global RNG" in result.findings[0].message

    def test_wall_clock_and_environ_flagged(self, tmp_path):
        result = lint_sources(tmp_path, {
            "dtm/bad.py": """\
                import os, time
                def snapshot():
                    return time.time(), os.environ["HOME"], os.getenv("X")
                """,
        }, select=("RPR001",))
        assert codes(result) == ["RPR001", "RPR001", "RPR001"]

    def test_set_iteration_flagged(self, tmp_path):
        result = lint_sources(tmp_path, {
            "core/bad.py": """\
                def drain(items):
                    for item in set(items):
                        yield item
                    return [x for x in {1, 2, 3}]
                """,
        }, select=("RPR001",))
        assert codes(result) == ["RPR001", "RPR001"]

    def test_seeded_instance_rng_is_clean(self, tmp_path):
        result = lint_sources(tmp_path, {
            "thermal/good.py": """\
                import random
                def noise(seed):
                    rng = random.Random(seed)
                    return rng.gauss(0.0, 1.0)
                def ordered(items):
                    for item in sorted(set(items)):
                        yield item
                """,
        }, select=("RPR001",))
        assert result.findings == []

    def test_unguarded_packages_are_exempt(self, tmp_path):
        result = lint_sources(tmp_path, {
            "workloads/free.py": "import os\nJOBS = os.environ.get('J')\n",
        }, select=("RPR001",))
        assert result.findings == []

    def test_suppression_with_reason(self, tmp_path):
        result = lint_sources(tmp_path, {
            "sim/annotated.py": """\
                import time
                def stamp():
                    return time.perf_counter()  # repro: noqa(RPR001) diagnostics only
                """,
        }, select=("RPR001",))
        assert result.findings == [] and result.suppressed == 1

    def test_batch_engine_module_is_guarded(self, tmp_path):
        # The lock-step batch engine produces cache-keyed results, so a
        # determinism hazard in sim/batch.py must fire like any simulator
        # module — pin the module path inside the guarded set.
        result = lint_sources(tmp_path, {
            "sim/batch.py": """\
                import time
                def lane_order(lanes):
                    time.time()
                    return [lane for lane in set(lanes)]
                """,
        }, select=("RPR001",))
        assert codes(result) == ["RPR001", "RPR001"]

    def test_cohort_module_is_guarded(self, tmp_path):
        # The cohort engine decides split points and culprit order for
        # cache-keyed batch results; nondeterminism there silently skews
        # every lane of a group, so RPR001 must cover sim/cohort.py.
        result = lint_sources(tmp_path, {
            "sim/cohort.py": """\
                import random
                def pick_keeper(partitions):
                    for lanes in {tuple(p) for p in partitions}:
                        pass
                    return random.choice(partitions)
                """,
        }, select=("RPR001",))
        assert codes(result) == ["RPR001", "RPR001"]


# -- RPR002: fingerprint completeness ----------------------------------------


SPEC_MODULE = """\
    from dataclasses import dataclass

    @dataclass(frozen=True)
    class RunSpec:
        workloads: tuple
        config: object
        trace: bool = False
    {extra_field}
    def spec_fingerprint(spec):
        return {{
            "workloads": list(spec.workloads),
            "config": repr(spec.config),
            "trace": spec.trace,
        }}
    """


class TestFingerprintRule:
    def test_unkeyed_field_flagged(self, tmp_path):
        result = lint_sources(tmp_path, {
            "parallel.py": SPEC_MODULE.format(extra_field="    telemetry: bool = False\n"),
        }, select=("RPR002",))
        assert codes(result) == ["RPR002"]
        finding = result.findings[0]
        assert "RunSpec.telemetry" in finding.message
        assert "CACHE_SCHEMA" in finding.message
        # Anchored at the field definition so the fix is one click away.
        assert finding.line == 8

    def test_fully_keyed_spec_is_clean(self, tmp_path):
        result = lint_sources(tmp_path, {
            "parallel.py": SPEC_MODULE.format(extra_field=""),
        }, select=("RPR002",))
        assert result.findings == []

    def test_spec_without_fingerprint_flagged(self, tmp_path):
        result = lint_sources(tmp_path, {
            "parallel.py": """\
                from dataclasses import dataclass
                @dataclass(frozen=True)
                class CampaignSpec:
                    quanta: int
                """,
        }, select=("RPR002",))
        assert codes(result) == ["RPR002"]
        assert "no spec_fingerprint" in result.findings[0].message

    def test_suppressed_field(self, tmp_path):
        source = SPEC_MODULE.format(
            extra_field="    scratch: int = 0  # repro: noqa(RPR002) display-only\n"
        )
        result = lint_sources(tmp_path, {"parallel.py": source}, select=("RPR002",))
        assert result.findings == [] and result.suppressed == 1


# -- RPR003: paper-constant hygiene ------------------------------------------


class TestPaperConstantRule:
    def test_kelvin_literal_flagged(self, tmp_path):
        result = lint_sources(tmp_path, {
            "dtm/policy.py": "EMERGENCY = 358.0\n",
        }, select=("RPR003",))
        assert codes(result) == ["RPR003"]
        assert "358.0" in result.findings[0].message

    def test_ewma_factor_flagged_in_both_spellings(self, tmp_path):
        result = lint_sources(tmp_path, {
            "core/ewma_copy.py": "X = 1 / 128\nY = 0.0078125\n",
        }, select=("RPR003",))
        assert codes(result) == ["RPR003", "RPR003"]

    def test_sample_interval_context_flagged(self, tmp_path):
        result = lint_sources(tmp_path, {
            "sim/runner.py": """\
                def make(cfg):
                    return cfg.replace(sample_interval=1000)
                """,
        }, select=("RPR003",))
        assert codes(result) == ["RPR003"]

    def test_canonical_site_and_unrelated_numbers_clean(self, tmp_path):
        result = lint_sources(tmp_path, {
            "config.py": "EMERGENCY_TEMPERATURE_K = 358.0\n",
            "sim/span.py": "CHUNK = 1000  # a span, not a sample interval\n",
            "thermal/model.py": "AMBIENT_K = 318.0\n",
        }, select=("RPR003",))
        assert result.findings == []

    def test_suppressed_literal(self, tmp_path):
        result = lint_sources(tmp_path, {
            "analysis/chart.py": (
                "LADDER = [354.0, 358.0]"
                "  # repro: noqa(RPR003) axis labels for the strip chart\n"
            ),
        }, select=("RPR003",))
        assert result.findings == [] and result.suppressed == 2


# -- RPR004: telemetry coverage ----------------------------------------------


EVENTS_MODULE = """\
    import enum

    class EventType(str, enum.Enum):
        SEDATE = "sedate"
        RELEASE = "release"
    """


class TestTelemetryCoverageRule:
    def test_dead_and_undefined_event_types_flagged(self, tmp_path):
        result = lint_sources(tmp_path, {
            "telemetry/events.py": EVENTS_MODULE,
            "core/emitter.py": """\
                from .events import EventType
                def fire(session, cycle):
                    session.emit(EventType.SEDATE, cycle)
                    session.emit(EventType.SEDATED, cycle)  # typo
                """,
        }, select=("RPR004",))
        found = {(f.code, f.message.split(" ")[0].split(".")[1]) for f in result.findings}
        assert ("RPR004", "SEDATED") in found  # undefined member
        assert ("RPR004", "RELEASE") in found  # defined but never emitted

    def test_full_coverage_is_clean(self, tmp_path):
        result = lint_sources(tmp_path, {
            "telemetry/events.py": EVENTS_MODULE,
            "core/emitter.py": """\
                from .events import EventType
                def fire(session, cycle, releasing):
                    kind = EventType.RELEASE if releasing else EventType.SEDATE
                    session.emit(EventType.SEDATE, cycle)
                    session.emit(EventType.RELEASE, cycle)
                """,
        }, select=("RPR004",))
        assert result.findings == []

    def test_single_module_lint_has_no_phantom_findings(self, tmp_path):
        # Without any emit site in scope, the missing-emit half stays quiet.
        result = lint_sources(tmp_path, {
            "telemetry/events.py": EVENTS_MODULE,
        }, select=("RPR004",))
        assert result.findings == []

    def test_campaign_event_types_need_emit_sites(self, tmp_path):
        # The lane/campaign members added for run_many rollups are ordinary
        # enum members to the rule: defining them without an emit site is a
        # finding, and a runner module that emits both is clean.
        events = EVENTS_MODULE + (
            '    LANE_COMPLETE = "lane_complete"\n'
            '        CAMPAIGN_ROLLUP = "campaign_rollup"\n'
        )
        runner = """\
            from .events import EventType
            def fire(session, cycle):
                session.emit(EventType.SEDATE, cycle)
                session.emit(EventType.RELEASE, cycle)
            """
        result = lint_sources(tmp_path, {
            "telemetry/events.py": events,
            "core/emitter.py": runner,
        }, select=("RPR004",))
        dead = {f.message.split(" ")[0].split(".")[1] for f in result.findings}
        assert {"LANE_COMPLETE", "CAMPAIGN_ROLLUP"} <= dead

        covered = lint_sources(tmp_path, {
            "telemetry/events.py": events,
            "core/emitter.py": runner + (
                "\n"
                "            def campaign(session, lanes, key):\n"
                "                for index in range(lanes):\n"
                "                    session.emit(EventType.LANE_COMPLETE,\n"
                "                                 index)\n"
                "                session.emit(EventType.CAMPAIGN_ROLLUP,\n"
                "                             lanes, data={'key': key})\n"
            ),
        }, select=("RPR004",))
        assert covered.findings == []

    def test_suppressed_dead_member(self, tmp_path):
        events = EVENTS_MODULE + (
            "    FUTURE = 'future'"
            "  # repro: noqa(RPR004) reserved for the next schema\n"
        )
        result = lint_sources(tmp_path, {
            "telemetry/events.py": events,
            "core/emitter.py": """\
                from .events import EventType
                def fire(session, cycle):
                    session.emit(EventType.SEDATE, cycle)
                    session.emit(EventType.RELEASE, cycle)
                """,
        }, select=("RPR004",))
        assert result.findings == [] and result.suppressed == 1


# -- RPR005: threshold ordering ----------------------------------------------


def config_module(lower: str, upper: str, emergency: str) -> str:
    return textwrap.dedent(f"""\
        from dataclasses import dataclass

        EMERGENCY_TEMPERATURE_K = {emergency}

        @dataclass(frozen=True)
        class ThermalConfig:
            emergency_k: float = EMERGENCY_TEMPERATURE_K

        @dataclass(frozen=True)
        class SedationConfig:
            upper_threshold_k: float = {upper}
            lower_threshold_k: float = {lower}
        """)


class TestThresholdOrderingRule:
    def test_inverted_sedation_thresholds_flagged(self, tmp_path):
        result = lint_sources(tmp_path, {
            "config.py": config_module("356.9", "356.5", "358.0"),
        }, select=("RPR005",))
        assert codes(result) == ["RPR005"]
        assert "not below the upper" in result.findings[0].message

    def test_upper_above_emergency_flagged(self, tmp_path):
        result = lint_sources(tmp_path, {
            "config.py": config_module("354.2", "358.5", "358.0"),
        }, select=("RPR005",))
        assert codes(result) == ["RPR005"]
        assert "emergency" in result.findings[0].message

    def test_correct_ladder_is_clean(self, tmp_path):
        result = lint_sources(tmp_path, {
            "config.py": config_module("354.2", "356.5", "358.0"),
        }, select=("RPR005",))
        assert result.findings == []

    def test_named_constants_resolve(self, tmp_path):
        # Defaults routed through module constants are still evaluated.
        source = textwrap.dedent("""\
            from dataclasses import dataclass
            UPPER = 359.0
            LOWER = 354.2
            EMERGENCY = 358.0
            @dataclass(frozen=True)
            class ThermalConfig:
                emergency_k: float = EMERGENCY
            @dataclass(frozen=True)
            class SedationConfig:
                upper_threshold_k: float = UPPER
                lower_threshold_k: float = LOWER
            """)
        result = lint_sources(tmp_path, {"config.py": source}, select=("RPR005",))
        assert codes(result) == ["RPR005"]


# -- framework: suppression parsing, parse errors, selection ------------------


class TestFramework:
    def test_blanket_noqa_suppresses_everything(self):
        source = "x = 1  # repro: noqa\ny = 2  # repro: noqa(RPR001, RPR003)\n"
        noqa = SuppressionMap.from_source(source)
        assert noqa.suppresses(1, "RPR001") and noqa.suppresses(1, "RPR999")
        assert noqa.suppresses(2, "RPR003") and not noqa.suppresses(2, "RPR002")
        assert not noqa.suppresses(3, "RPR001")

    def test_noqa_inside_string_is_not_a_suppression(self):
        noqa = SuppressionMap.from_source('x = "# repro: noqa"\n')
        assert not noqa.suppresses(1, "RPR001")

    def test_syntax_error_is_a_finding(self, tmp_path):
        result = lint_sources(tmp_path, {"sim/broken.py": "def f(:\n"})
        assert codes(result) == [PARSE_ERROR_CODE]
        assert result.exit_code == 1

    def test_unknown_rule_code_rejected(self, tmp_path):
        from repro.errors import ConfigError
        with pytest.raises(ConfigError, match="unknown rule"):
            run_lint([tmp_path], LintConfig(select=("RPR999",)))

    def test_ignore_drops_a_rule(self, tmp_path):
        files = {"dtm/policy.py": "EMERGENCY = 358.0\n"}
        flagged = lint_sources(tmp_path, files)
        assert "RPR003" in codes(flagged)
        clean = run_lint([tmp_path], LintConfig(ignore=("RPR003",)))
        assert "RPR003" not in codes(clean)

    def test_pycache_is_skipped(self, tmp_path):
        result = lint_sources(tmp_path, {
            "__pycache__/junk.py": "x = 358.0\n",
            "dtm/ok.py": "x = 1\n",
        })
        assert result.files_checked == 1 and result.findings == []


# -- reporters ----------------------------------------------------------------


class TestReporters:
    @pytest.fixture()
    def result(self):
        return LintResult(
            findings=[
                Finding("src/a.py", 3, 5, "RPR001", "wall clock read"),
                Finding("src/b.py", 10, 1, "RPR003", "magic constant"),
            ],
            suppressed=2,
            files_checked=4,
        )

    def test_text_golden(self, result):
        assert render_text(result) == (
            "src/a.py:3:5: RPR001 wall clock read\n"
            "src/b.py:10:1: RPR003 magic constant\n"
            "checked 4 file(s): 2 findings (2 suppressed)"
        )

    def test_text_singular_and_clean(self):
        clean = LintResult(files_checked=2)
        assert render_text(clean) == "checked 2 file(s): 0 findings"

    def test_json_golden(self, result):
        payload = json.loads(render_json(result))
        assert payload == {
            "files_checked": 4,
            "suppressed": 2,
            "baselined": 0,
            "stale_baseline": 0,
            "findings": [
                {"path": "src/a.py", "line": 3, "col": 5,
                 "code": "RPR001", "message": "wall clock read"},
                {"path": "src/b.py", "line": 10, "col": 1,
                 "code": "RPR003", "message": "magic constant"},
            ],
        }

    def test_rule_catalog_lists_all_nine(self):
        catalog = render_rules()
        for code in ("RPR001", "RPR002", "RPR003", "RPR004", "RPR005",
                     "RPR006", "RPR007", "RPR008", "RPR009"):
            assert code in catalog


# -- the self-check: this repository must pass its own linter -----------------


class TestSelfCheck:
    def test_src_tree_is_clean(self):
        result = run_lint([REPO_ROOT / "src"])
        assert result.findings == [], "\n".join(
            finding.render() for finding in result.findings
        )
        assert result.files_checked > 50  # the whole package was scanned

    def test_cli_module_entry_is_clean(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        proc = subprocess.run(
            [sys.executable, "-m", "repro.lint", "src/", "--format", "json"],
            capture_output=True, text=True, cwd=REPO_ROOT, env=env,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        payload = json.loads(proc.stdout)
        assert payload["findings"] == []

    def test_tools_entry_point_flags_a_bad_file(self, tmp_path):
        bad = tmp_path / "sim" / "bad.py"
        bad.parent.mkdir()
        bad.write_text("import time\nT = time.time()\n")
        proc = subprocess.run(
            [sys.executable, str(REPO_ROOT / "tools" / "lint.py"), str(tmp_path)],
            capture_output=True, text=True,
        )
        assert proc.returncode == 1
        assert "RPR001" in proc.stdout
