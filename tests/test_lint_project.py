"""repro.lint v2: project context, cross-module rules, baseline, CLI.

The v1 rules keep their fixtures in ``test_lint.py``; this file covers the
project-wide analysis context (symbol table, import/call graph, constant
lattice, dict shapes, twin regions) and everything built on it: RPR006
twin-path drift (with the mutation matrix the CI gate relies on), RPR007
transitive determinism taint, RPR008 payload schemas, RPR009 bank shapes,
the findings baseline, the SARIF reporter, multi-line suppression, and the
``--rule``/``--diff`` CLI flags.
"""

from __future__ import annotations

import ast
import json
import shutil
import subprocess
import textwrap
import time
from pathlib import Path

from repro.lint import Finding, LintConfig, LintResult, run_lint
from repro.lint.baseline import Baseline, paths_match
from repro.lint.cli import main as lint_main
from repro.lint.engine import _load_module, iter_python_files
from repro.lint.findings import SuppressionMap
from repro.lint.project import (
    UNKNOWN,
    ProjectContext,
    const_eval,
    dict_shape_at,
    module_dotted_name,
)
from repro.lint.report import render_sarif

REPO_ROOT = Path(__file__).resolve().parent.parent


def write_tree(tmp_path: Path, files: dict[str, str]) -> None:
    for relpath, source in files.items():
        path = tmp_path / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))


def lint_tree(
    tmp_path: Path,
    files: dict[str, str],
    select: tuple[str, ...] | None = None,
    **config,
) -> LintResult:
    write_tree(tmp_path, files)
    return run_lint([tmp_path], LintConfig(select=select, **config))


def build_context(tmp_path: Path, files: dict[str, str]) -> ProjectContext:
    write_tree(tmp_path, files)
    modules = []
    for path in iter_python_files([tmp_path]):
        module, error = _load_module(path)
        assert error is None, error
        modules.append(module)
    return ProjectContext(modules)


def codes(result: LintResult) -> list[str]:
    return [finding.code for finding in result.findings]


# -- the project context ------------------------------------------------------


class TestProjectContext:
    def test_symbol_table_and_dotted_names(self, tmp_path):
        ctx = build_context(tmp_path, {
            "dtm/policy.py": """\
                def helper():
                    pass

                class Policy:
                    def on_sensor(self, reading):
                        pass
                """,
        })
        info = ctx.modules[0]
        assert info.dotted.endswith("dtm.policy")
        assert set(info.functions) == {"helper", "Policy.on_sensor"}
        fi = info.functions["Policy.on_sensor"]
        assert fi.qualname == f"{info.dotted}::Policy.on_sensor"
        assert fi.class_name == "Policy" and fi.short == "Policy.on_sensor"

    def test_repro_rooted_dotted_name(self):
        module, _ = _load_module(REPO_ROOT / "src" / "repro" / "dtm" / "dvfs.py")
        assert module_dotted_name(module) == "repro.dtm.dvfs"

    def test_imported_symbol_call_edge(self, tmp_path):
        ctx = build_context(tmp_path, {
            "analysis/util.py": """\
                def stamp():
                    return 0
                """,
            "sim/run.py": """\
                from analysis.util import stamp

                def simulate():
                    return stamp()
                """,
        })
        caller = next(q for q in ctx.call_graph if q.endswith("::simulate"))
        callees = [callee for callee, _call in ctx.call_graph[caller]]
        assert len(callees) == 1 and callees[0].endswith("util::stamp")

    def test_self_method_call_edge(self, tmp_path):
        ctx = build_context(tmp_path, {
            "sim/core.py": """\
                class Core:
                    def step(self):
                        self.tick()

                    def tick(self):
                        pass
                """,
        })
        caller = next(q for q in ctx.call_graph if q.endswith("::Core.step"))
        callees = [callee for callee, _call in ctx.call_graph[caller]]
        assert callees == [caller.replace("Core.step", "Core.tick")]

    def test_find_module_suffix_and_ambiguity(self, tmp_path):
        ctx = build_context(tmp_path, {
            "analysis/util.py": "A = 1\n",
            "plots/util.py": "B = 2\n",
            "analysis/io.py": "C = 3\n",
        })
        assert ctx.find_module("analysis.util") is not None
        assert ctx.find_module("analysis.io").constants == {"C": 3}
        # Two modules end in ".util": a bare suffix must not guess.
        assert ctx.find_module("util") is None

    def test_constant_lattice(self, tmp_path):
        ctx = build_context(tmp_path, {
            "config.py": """\
                BASE = 2
                SCALED = BASE * 3 + 1
                NAMES = ("x", "y")
                OPAQUE = object()
                """,
        })
        constants = ctx.modules[0].constants
        assert constants["BASE"] == 2 and constants["SCALED"] == 7
        assert constants["NAMES"] == ("x", "y")
        assert "OPAQUE" not in constants

    def test_const_eval_unknown_propagates(self):
        env = {"A": 3}
        assert const_eval(ast.parse("A - 1", mode="eval").body, env) == 2
        assert const_eval(ast.parse("A + B", mode="eval").body, env) is UNKNOWN
        assert const_eval(ast.parse("-A", mode="eval").body, env) == -3

    def test_dict_shape_tracks_branch_keys(self, tmp_path):
        source = textwrap.dedent("""\
            def fire(session, ok):
                data = {"a": 1}
                data["b"] = "x"
                if ok:
                    data["c"] = 2
                session.emit(data)
            """)
        tree = ast.parse(source)
        func = tree.body[0]
        call = next(
            node for node in ast.walk(func)
            if isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "emit"
        )
        shape = dict_shape_at(func, "data", call)
        assert shape.required == {"a", "b"} and shape.optional == {"c"}
        assert shape.kinds["a"] == {"num"} and shape.kinds["b"] == {"str"}
        assert not shape.dynamic

    def test_dict_shape_unpack_is_dynamic(self):
        source = "def fire(session, extra):\n    data = {**extra}\n    session.emit(data)\n"
        func = ast.parse(source).body[0]
        call = next(
            node for node in ast.walk(func) if isinstance(node, ast.Call)
        )
        shape = dict_shape_at(func, "data", call)
        assert shape.dynamic


# -- RPR006: twin-path drift --------------------------------------------------


SCALAR_TWIN = """\
    class Policy:
        def on_sensor(self, reading):  # repro: twin(demo)
            if reading.hot >= self.emergency:
                self.stalled = True
                self.engagements += 1
    """

VECTOR_TWIN = """\
    def on_sensor(hot, emergency, stalled, engagements):  # repro: twin(demo)
        mask = hot >= emergency
        stalled[mask] = True
        engagements[mask] += 1
    """


class TestTwinPathRule:
    def test_matching_pair_is_clean(self, tmp_path):
        result = lint_tree(tmp_path, {
            "dtm/policy.py": SCALAR_TWIN,
            "sim/cohort.py": VECTOR_TWIN,
        }, select=("RPR006",))
        assert result.findings == []

    def test_threshold_constant_edit_fires(self, tmp_path):
        result = lint_tree(tmp_path, {
            "dtm/policy.py": SCALAR_TWIN,
            "sim/cohort.py": VECTOR_TWIN.replace("+= 1", "+= 2"),
        }, select=("RPR006",))
        assert codes(result) == ["RPR006"]
        message = result.findings[0].message
        assert "constants" in message and "scalar" in message

    def test_operator_flip_fires(self, tmp_path):
        result = lint_tree(tmp_path, {
            "dtm/policy.py": SCALAR_TWIN,
            "sim/cohort.py": VECTOR_TWIN.replace(">=", ">"),
        }, select=("RPR006",))
        assert codes(result) == ["RPR006"]
        assert "'x0 <= x1' vs 'x0 < x1'" in result.findings[0].message

    def test_rename_only_stays_clean(self, tmp_path):
        renamed = (
            VECTOR_TWIN.replace("hot", "temp_k").replace("emergency", "limit")
        )
        result = lint_tree(tmp_path, {
            "dtm/policy.py": SCALAR_TWIN,
            "sim/cohort.py": renamed,
        }, select=("RPR006",))
        assert result.findings == []

    def test_reordered_comparisons_fire(self, tmp_path):
        scalar = """\
            class Policy:
                def check(self, r):  # repro: twin(ladder)
                    if r.hot <= self.resume:
                        self.state = 0
                    if r.hot >= self.emergency:
                        self.state = 2
            """
        vector = """\
            def check(hot, resume, emergency, state):  # repro: twin(ladder)
                if (hot >= emergency).any():
                    state = 2
                if (hot <= resume).any():
                    state = 0
            """
        result = lint_tree(tmp_path, {
            "dtm/policy.py": scalar,
            "sim/cohort.py": vector,
        }, select=("RPR006",))
        assert codes(result) == ["RPR006"]

    def test_vector_dispatch_scaffolding_is_dropped(self, tmp_path):
        scalar = """\
            class Policy:
                def on_sensor(self, reading):  # repro: twin(scaf)
                    if reading.hot >= self.emergency:
                        self.engagements += 1
            """
        vector = """\
            CODE_STOP = 3

            def step(code, hot, emergency, engagements):  # repro: twin(scaf)
                mask = (code == CODE_STOP) & (hot >= emergency)
                engagements[mask] += 1
            """
        result = lint_tree(tmp_path, {
            "dtm/policy.py": scalar,
            "sim/cohort.py": vector,
        }, select=("RPR006",))
        assert result.findings == []

    def test_begin_end_span_pairs_with_trailing_anchor(self, tmp_path):
        scalar = """\
            class Policy:
                def on_sensor(self, reading):  # repro: twin(span)
                    if reading.hot >= self.emergency:
                        self.engagements += 1
            """
        vector = """\
            def step(hot, emergency, engagements, other):
                mask = hot >= emergency  # repro: twin(span) begin
                engagements[mask] += 1  # repro: twin(span) end
                other[0] = 99
            """
        result = lint_tree(tmp_path, {
            "dtm/policy.py": scalar,
            "sim/cohort.py": vector,
        }, select=("RPR006",))
        # The 99 outside the span must not leak into the fingerprint.
        assert result.findings == []

    def test_one_sided_tag_fires(self, tmp_path):
        result = lint_tree(tmp_path, {
            "dtm/policy.py": SCALAR_TWIN,
        }, select=("RPR006",))
        assert codes(result) == ["RPR006"]
        assert "no vector side" in result.findings[0].message

    def test_unterminated_begin_fires(self, tmp_path):
        result = lint_tree(tmp_path, {
            "dtm/policy.py": "x = 1  # repro: twin(t1) begin\n",
        }, select=("RPR006",))
        assert codes(result) == ["RPR006"]
        assert "never closed" in result.findings[0].message

    def test_end_without_begin_fires(self, tmp_path):
        result = lint_tree(tmp_path, {
            "dtm/policy.py": "x = 1  # repro: twin(t2) end\n",
        }, select=("RPR006",))
        assert codes(result) == ["RPR006"]
        assert "without a matching begin" in result.findings[0].message

    def test_suppressed_one_sided_tag(self, tmp_path):
        source = SCALAR_TWIN.replace(
            "# repro: twin(demo)",
            "# repro: twin(demo)  # repro: noqa(RPR006) scalar-only for now",
        )
        result = lint_tree(tmp_path, {
            "dtm/policy.py": source,
        }, select=("RPR006",))
        assert result.findings == [] and result.suppressed == 1

    def test_real_tree_sedation_threshold_mutation(self, tmp_path):
        """The CI gate: drifting a sedation threshold in cohort.py fires."""
        shutil.copytree(REPO_ROOT / "src", tmp_path / "src")
        cohort = tmp_path / "src" / "repro" / "sim" / "cohort.py"
        text = cohort.read_text()
        pristine = "safety = is_sedation & (hottest >= self.emergency)"
        assert pristine in text
        cohort.write_text(
            text.replace(pristine, pristine.replace(">=", ">"), 1)
        )
        result = run_lint([tmp_path / "src"], LintConfig(select=("RPR006",)))
        assert codes(result) == ["RPR006"]
        assert "sedation-safety-net" in result.findings[0].message

    def test_real_tree_run_span_mutation(self, tmp_path):
        """Drifting the batch hot loop away from Simulator._run_span fires."""
        shutil.copytree(REPO_ROOT / "src", tmp_path / "src")
        batch = tmp_path / "src" / "repro" / "sim" / "batch.py"
        text = batch.read_text()
        pristine = "if slowdown > 1:"
        assert pristine in text
        batch.write_text(text.replace(pristine, "if slowdown > 2:", 1))
        result = run_lint([tmp_path / "src"], LintConfig(select=("RPR006",)))
        assert codes(result) == ["RPR006"]
        assert "run-span" in result.findings[0].message

    def test_real_tree_sensor_noise_mutation(self, tmp_path):
        """Drifting the RNG bank's noise guard off SensorBank.sample fires."""
        shutil.copytree(REPO_ROOT / "src", tmp_path / "src")
        soa = tmp_path / "src" / "repro" / "sim" / "soa.py"
        text = soa.read_text()
        pristine = "if sigma > 0.0:"
        assert pristine in text
        soa.write_text(text.replace(pristine, "if sigma > 0.5:", 1))
        result = run_lint([tmp_path / "src"], LintConfig(select=("RPR006",)))
        assert codes(result) == ["RPR006"]
        assert "sensor-noise" in result.findings[0].message


# -- RPR007: transitive determinism taint -------------------------------------


class TestTransitiveTaintRule:
    def test_helper_routed_wall_clock_fires(self, tmp_path):
        result = lint_tree(tmp_path, {
            "analysis/util.py": """\
                import time

                def stamp():
                    return time.time()
                """,
            "sim/run.py": """\
                from analysis.util import stamp

                def simulate():
                    return stamp()
                """,
        }, select=("RPR007",))
        assert codes(result) == ["RPR007"]
        finding = result.findings[0]
        assert finding.path.endswith("sim/run.py")
        assert "simulate() reaches time.time() through stamp" in finding.message

    def test_two_hop_chain_is_spelled_out(self, tmp_path):
        result = lint_tree(tmp_path, {
            "analysis/inner.py": """\
                import time

                def now():
                    return time.time()
                """,
            "analysis/outer.py": """\
                from analysis.inner import now

                def wrap():
                    return now()
                """,
            "sim/run.py": """\
                from analysis.outer import wrap

                def simulate():
                    return wrap()
                """,
        }, select=("RPR007",))
        assert codes(result) == ["RPR007"]
        assert "wrap -> now" in result.findings[0].message

    def test_sanctioned_helper_does_not_taint(self, tmp_path):
        result = lint_tree(tmp_path, {
            "analysis/util.py": """\
                import time

                def stamp():
                    return time.time()  # repro: noqa(RPR007) wall time is display-only here
                """,
            "sim/run.py": """\
                from analysis.util import stamp

                def simulate():
                    return stamp()
                """,
        }, select=("RPR007",))
        assert result.findings == []

    def test_direct_hazard_in_guarded_code_is_rpr001_business(self, tmp_path):
        files = {
            "sim/run.py": """\
                import time

                def simulate():
                    return time.time()
                """,
        }
        taint_only = lint_tree(tmp_path, files, select=("RPR007",))
        assert taint_only.findings == []
        both = run_lint([tmp_path], LintConfig(select=("RPR001", "RPR007")))
        assert codes(both) == ["RPR001"]

    def test_guarded_helper_is_a_taint_barrier(self, tmp_path):
        result = lint_tree(tmp_path, {
            "sim/helper.py": """\
                import time

                def now():
                    return time.time()
                """,
            "sim/run.py": """\
                from sim.helper import now

                def simulate():
                    return now()
                """,
        }, select=("RPR007",))
        assert result.findings == []


# -- RPR008: payload schema consistency ---------------------------------------


class TestPayloadSchemaRule:
    def test_key_set_drift_fires_on_the_outlier(self, tmp_path):
        result = lint_tree(tmp_path, {
            "telemetry/a.py": """\
                def fire(session, cycle):
                    session.emit(EventType.STEP, cycle, data={"slowdown": 2})
                """,
            "telemetry/b.py": """\
                def fire(session, cycle):
                    session.emit(
                        EventType.STEP, cycle,
                        data={"slowdown": 3, "mechanism": "dvfs"},
                    )
                """,
        }, select=("RPR008",))
        assert codes(result) == ["RPR008"]
        finding = result.findings[0]
        assert finding.path.endswith("telemetry/b.py")
        assert "differ from {slowdown}" in finding.message

    def test_value_kind_drift_fires(self, tmp_path):
        result = lint_tree(tmp_path, {
            "telemetry/a.py": """\
                def fire(session, cycle):
                    session.emit(EventType.STEP, cycle, data={"slowdown": 2})
                """,
            "telemetry/b.py": """\
                def fire(session, cycle):
                    session.emit(EventType.STEP, cycle, data={"slowdown": "slow"})
                """,
        }, select=("RPR008",))
        assert codes(result) == ["RPR008"]
        assert "mixes value kinds" in result.findings[0].message

    def test_conditional_key_fires(self, tmp_path):
        result = lint_tree(tmp_path, {
            "telemetry/a.py": """\
                def fire(session, cycle, failed):
                    data = {"slowdown": 2}
                    if failed:
                        data["error"] = "boom"
                    session.emit(EventType.STEP, cycle, data=data)
                """,
        }, select=("RPR008",))
        assert codes(result) == ["RPR008"]
        assert "conditional keys {error}" in result.findings[0].message

    def test_dynamic_payload_fires(self, tmp_path):
        result = lint_tree(tmp_path, {
            "telemetry/a.py": """\
                def fire(session, cycle, extra):
                    session.emit(EventType.STEP, cycle, data={**extra})
                """,
        }, select=("RPR008",))
        assert codes(result) == ["RPR008"]
        assert "not statically analyzable" in result.findings[0].message

    def test_consistent_sites_are_clean(self, tmp_path):
        result = lint_tree(tmp_path, {
            "telemetry/a.py": """\
                def fire(session, cycle):
                    session.emit(EventType.STEP, cycle, data={"slowdown": 2})
                """,
            "telemetry/b.py": """\
                def fire(session, cycle):
                    session.emit(EventType.STEP, cycle, data={"slowdown": 4})
                """,
            "telemetry/c.py": """\
                def fire(session, cycle):
                    session.emit(EventType.OTHER, cycle)
                """,
        }, select=("RPR008",))
        assert result.findings == []

    def test_suppressed_variant_site(self, tmp_path):
        result = lint_tree(tmp_path, {
            "telemetry/a.py": """\
                def fire(session, cycle):
                    session.emit(EventType.STEP, cycle, data={"slowdown": 2})
                def fire_more(session, cycle):
                    session.emit(EventType.STEP, cycle, data={"slowdown": 3})
                """,
            "telemetry/b.py": """\
                def fire(session, cycle):
                    session.emit(  # repro: noqa(RPR008) deliberate variant
                        EventType.STEP, cycle,
                        data={"slowdown": 3, "mechanism": "dvfs"},
                    )
                """,
        }, select=("RPR008",))
        assert result.findings == [] and result.suppressed == 1


# -- RPR009: SoA bank shapes --------------------------------------------------


_BANK_TEMPLATE = textwrap.dedent("""\
    import numpy as np

    _ARRAY_FIELDS = {fields}

    class Bank:
        def __init__(self, n):
            self.x = np.zeros(n, dtype=np.float64)
            self.y = np.zeros(n, dtype=np.int64)
            self.n = n

        def take(self, idx):
            clone = Bank.__new__(Bank)
    {body}
            clone.n = 1
            return clone
    """)


def bank_module(fields: str, take_body: str) -> str:
    body = textwrap.indent(textwrap.dedent(take_body), " " * 8).rstrip("\n")
    return _BANK_TEMPLATE.format(fields=fields, body=body)


GATHER_LOOP = """\
    for name in _ARRAY_FIELDS:
        setattr(clone, name, getattr(self, name)[idx])
    """


class TestBankShapeRule:
    def test_complete_gather_loop_is_clean(self, tmp_path):
        result = lint_tree(tmp_path, {
            "sim/banks.py": bank_module('("x", "y")', GATHER_LOOP),
        }, select=("RPR009",))
        assert result.findings == []

    def test_missing_array_field_fires(self, tmp_path):
        result = lint_tree(tmp_path, {
            "sim/banks.py": bank_module('("x",)', GATHER_LOOP),
        }, select=("RPR009",))
        assert codes(result) == ["RPR009"]
        assert "does not carry array field 'y'" in result.findings[0].message

    def test_stale_field_list_entry_fires(self, tmp_path):
        result = lint_tree(tmp_path, {
            "sim/banks.py": bank_module('("x", "y", "z")', GATHER_LOOP),
        }, select=("RPR009",))
        assert codes(result) == ["RPR009"]
        assert "'z'" in result.findings[0].message
        assert "stale" in result.findings[0].message

    def test_clone_dtype_mismatch_fires(self, tmp_path):
        body = """\
            clone.x = np.zeros(len(idx), dtype=np.int32)
            clone.y = self.y[idx]
            """
        result = lint_tree(tmp_path, {
            "sim/banks.py": bank_module("()", body),
        }, select=("RPR009",))
        assert codes(result) == ["RPR009"]
        assert "different dtype" in result.findings[0].message

    def test_unresolvable_gather_loop_is_skipped(self, tmp_path):
        body = """\
            for name in self.fields():
                setattr(clone, name, getattr(self, name)[idx])
            """
        result = lint_tree(tmp_path, {
            "sim/banks.py": bank_module("()", body),
        }, select=("RPR009",))
        assert result.findings == []

    def test_non_guarded_package_is_exempt(self, tmp_path):
        result = lint_tree(tmp_path, {
            "analysis/banks.py": bank_module('("x",)', GATHER_LOOP),
        }, select=("RPR009",))
        assert result.findings == []

    def test_suppressed_clone_method(self, tmp_path):
        source = bank_module('("x",)', GATHER_LOOP).replace(
            "def take(self, idx):",
            "def take(self, idx):  # repro: noqa(RPR009) y is rebuilt lazily",
        )
        result = lint_tree(tmp_path, {
            "sim/banks.py": source,
        }, select=("RPR009",))
        assert result.findings == [] and result.suppressed == 1

    def test_real_tree_rng_bank_take_covers_sigmas(self, tmp_path):
        """Dropping the sigma gather from LaneRngBank.take fires RPR009."""
        shutil.copytree(REPO_ROOT / "src", tmp_path / "src")
        soa = tmp_path / "src" / "repro" / "sim" / "soa.py"
        text = soa.read_text()
        pristine = "        clone.sigmas = self.sigmas[indices]\n"
        assert pristine in text
        soa.write_text(text.replace(pristine, "", 1))
        result = run_lint([tmp_path / "src"], LintConfig(select=("RPR009",)))
        assert codes(result) == ["RPR009"]
        assert "'sigmas'" in result.findings[0].message

    def test_real_tree_cohort_take_keeps_group_rows_dtype(self, tmp_path):
        shutil.copytree(REPO_ROOT / "src", tmp_path / "src")
        cohort = tmp_path / "src" / "repro" / "sim" / "cohort.py"
        text = cohort.read_text()
        pristine = "child.group_rows = np.array(rows, dtype=np.int64)"
        assert pristine in text
        cohort.write_text(
            text.replace(pristine, pristine.replace("int64", "int32"), 1)
        )
        result = run_lint([tmp_path / "src"], LintConfig(select=("RPR009",)))
        assert codes(result) == ["RPR009"]
        assert "different dtype" in result.findings[0].message
        assert "group_rows" in result.findings[0].message


# -- the findings baseline ----------------------------------------------------


class TestBaseline:
    def test_round_trip_absorbs_everything(self, tmp_path):
        findings = [
            Finding("src/a.py", 3, 1, "RPR003", "magic constant"),
            Finding("src/a.py", 9, 1, "RPR003", "magic constant"),
            Finding("src/b.py", 2, 1, "RPR001", "wall clock"),
        ]
        baseline = Baseline.from_findings(findings)
        path = tmp_path / "baseline.json"
        baseline.write(path)
        loaded = Baseline.load(path)
        survivors, absorbed = loaded.apply(findings)
        assert survivors == [] and absorbed == 3
        assert loaded.stale_entries() == []

    def test_counts_cap_absorption_and_reveal_staleness(self, tmp_path):
        two = [
            Finding("src/a.py", 3, 1, "RPR003", "magic constant"),
            Finding("src/a.py", 9, 1, "RPR003", "magic constant"),
        ]
        baseline = Baseline.from_findings(two)
        # Three findings against a count-2 entry: one survives.
        survivors, absorbed = baseline.apply(
            two + [Finding("src/a.py", 20, 1, "RPR003", "magic constant")]
        )
        assert len(survivors) == 1 and absorbed == 2
        # One finding against a count-2 entry: the entry is stale.
        survivors, absorbed = baseline.apply(two[:1])
        assert survivors == [] and absorbed == 1
        assert len(baseline.stale_entries()) == 1

    def test_render_is_deterministic(self):
        findings = [
            Finding("src/b.py", 2, 1, "RPR001", "wall clock"),
            Finding("src/a.py", 3, 1, "RPR003", "magic constant"),
        ]
        first = Baseline.from_findings(findings).render()
        second = Baseline.from_findings(list(reversed(findings))).render()
        assert first == second
        assert json.loads(first)["schema"] == 1

    def test_path_matching_tolerates_prefixes(self):
        assert paths_match("src/repro/x.py", "src/repro/x.py")
        assert paths_match("/repo/src/repro/x.py", "src/repro/x.py")
        assert paths_match("src/repro/x.py", "/repo/src/repro/x.py")
        assert not paths_match("src/repro/x.py", "repro_x.py")

    def test_engine_subtracts_baselined_findings(self, tmp_path):
        files = {"dtm/policy.py": "EMERGENCY = 358.0\n"}
        flagged = lint_tree(tmp_path, files, select=("RPR003",))
        assert codes(flagged) == ["RPR003"]
        baseline = Baseline.from_findings(flagged.findings)
        gated = run_lint(
            [tmp_path], LintConfig(select=("RPR003",), baseline=baseline)
        )
        assert gated.findings == [] and gated.baselined == 1
        assert gated.exit_code == 0

    def test_engine_counts_stale_entries(self, tmp_path):
        write_tree(tmp_path, {"dtm/policy.py": "x = 1\n"})
        baseline = Baseline.from_findings(
            [Finding("dtm/policy.py", 1, 1, "RPR003", "gone finding")]
        )
        result = run_lint([tmp_path], LintConfig(baseline=baseline))
        assert result.stale_baseline == 1

    def test_checked_in_baseline_matches_the_tree(self):
        result = run_lint(
            [REPO_ROOT / "src"],
            LintConfig(baseline=REPO_ROOT / "tools" / "lint_baseline.json"),
        )
        assert result.findings == [] and result.stale_baseline == 0

    def test_update_tool_is_deterministic(self, tmp_path):
        target = tmp_path / "baseline.json"
        write_tree(tmp_path, {"src/dtm/policy.py": "EMERGENCY = 358.0\n"})
        argv = [str(tmp_path / "src"), "--baseline", str(target), "--update"]
        for _ in range(2):
            proc = subprocess.run(
                ["python", str(REPO_ROOT / "tools" / "lint_baseline.py"), *argv],
                capture_output=True, text=True,
            )
            assert proc.returncode == 0, proc.stdout + proc.stderr
        first = target.read_text()
        payload = json.loads(first)
        assert payload["findings"][0]["code"] == "RPR003"
        check = subprocess.run(
            ["python", str(REPO_ROOT / "tools" / "lint_baseline.py"),
             str(tmp_path / "src"), "--baseline", str(target), "--check"],
            capture_output=True, text=True,
        )
        assert check.returncode == 0, check.stdout + check.stderr


# -- multi-line suppression (regression) --------------------------------------


class TestMultiLineSuppression:
    def test_noqa_inside_wrapped_statement_covers_its_span(self):
        source = (
            "value = compute(\n"
            "    358.0,\n"
            "    # repro: noqa(RPR003) wrapped-call fixture\n"
            ")\n"
        )
        noqa = SuppressionMap.from_source(source)
        for line in (1, 2, 3, 4):
            assert noqa.suppresses(line, "RPR003"), line
        assert not noqa.suppresses(1, "RPR001")

    def test_standalone_comment_only_covers_its_own_line(self):
        source = "# repro: noqa(RPR003) not attached\nvalue = 358.0\n"
        noqa = SuppressionMap.from_source(source)
        assert noqa.suppresses(1, "RPR003")
        assert not noqa.suppresses(2, "RPR003")

    def test_wrapped_hazard_call_is_suppressed_end_to_end(self, tmp_path):
        result = lint_tree(tmp_path, {
            "sim/clock.py": """\
                import time

                def now():
                    return time.time(
                        # repro: noqa(RPR001) diagnostics only
                    )
                """,
        }, select=("RPR001",))
        assert result.findings == [] and result.suppressed == 1


# -- SARIF reporter -----------------------------------------------------------


class TestSarifReporter:
    def test_structure_and_rule_index(self):
        result = LintResult(
            findings=[Finding("src/a.py", 3, 5, "RPR006", "drifted")],
            files_checked=1,
        )
        payload = json.loads(render_sarif(result))
        assert payload["version"] == "2.1.0"
        run = payload["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro.lint"
        ids = [rule["id"] for rule in run["tool"]["driver"]["rules"]]
        assert ids == sorted(ids) and len(ids) == 9
        entry = run["results"][0]
        assert entry["ruleId"] == "RPR006"
        assert ids[entry["ruleIndex"]] == "RPR006"
        location = entry["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "src/a.py"
        assert location["region"] == {"startLine": 3, "startColumn": 5}

    def test_clean_run_has_no_results(self):
        payload = json.loads(render_sarif(LintResult(files_checked=2)))
        assert payload["runs"][0]["results"] == []


# -- CLI: --rule and --diff ---------------------------------------------------


def _git(cwd: Path, *args: str) -> None:
    subprocess.run(
        ["git", "-c", "user.name=test", "-c", "user.email=test@example.com",
         *args],
        cwd=cwd, check=True, capture_output=True,
    )


class TestCLIFlags:
    def test_rule_flag_narrows_selection(self, tmp_path, capsys):
        write_tree(tmp_path, {
            "dtm/policy.py": "EMERGENCY = 358.0\n",
            "sim/clock.py": "import time\nT = time.time()\n",
        })
        status = lint_main([str(tmp_path), "--rule", "RPR003"])
        out = capsys.readouterr().out
        assert status == 1
        assert "RPR003" in out and "RPR001" not in out

    def test_rule_flag_is_repeatable(self, tmp_path, capsys):
        write_tree(tmp_path, {
            "dtm/policy.py": "EMERGENCY = 358.0\n",
            "sim/clock.py": "import time\nT = time.time()\n",
        })
        status = lint_main(
            [str(tmp_path), "--rule", "RPR003", "--rule", "RPR001"]
        )
        out = capsys.readouterr().out
        assert status == 1
        assert "RPR003" in out and "RPR001" in out

    def test_diff_reports_only_changed_files(self, tmp_path, monkeypatch, capsys):
        write_tree(tmp_path, {
            "dtm/stable.py": "EMERGENCY = 358.0\n",
            "dtm/edited.py": "UPPER = 356.5\n",
        })
        _git(tmp_path, "init", "-q")
        _git(tmp_path, "add", "-A")
        _git(tmp_path, "commit", "-qm", "seed")
        (tmp_path / "dtm" / "edited.py").write_text(
            "UPPER = 356.5\nEMERGENCY = 358.0\n"
        )
        monkeypatch.chdir(tmp_path)
        status = lint_main([".", "--diff", "--rule", "RPR003"])
        out = capsys.readouterr().out
        assert status == 1
        assert "edited.py" in out and "stable.py" not in out

    def test_output_writes_report_and_prints_summary(self, tmp_path, capsys):
        write_tree(tmp_path, {"dtm/policy.py": "EMERGENCY = 358.0\n"})
        target = tmp_path / "lint.sarif"
        status = lint_main([
            str(tmp_path / "dtm"), "--rule", "RPR003",
            "--format", "sarif", "--output", str(target),
        ])
        out = capsys.readouterr().out
        assert status == 1
        payload = json.loads(target.read_text())
        assert payload["runs"][0]["results"][0]["ruleId"] == "RPR003"
        assert "1 finding" in out  # the one-line text pulse

    def test_baseline_flag_gates_on_regressions_only(self, tmp_path, capsys):
        write_tree(tmp_path, {"dtm/policy.py": "EMERGENCY = 358.0\n"})
        baseline = tmp_path / "baseline.json"
        flagged = run_lint([tmp_path], LintConfig(select=("RPR003",)))
        Baseline.from_findings(flagged.findings).write(baseline)
        status = lint_main([
            str(tmp_path), "--rule", "RPR003", "--baseline", str(baseline),
        ])
        out = capsys.readouterr().out
        assert status == 0 and "1 baselined" in out


# -- performance budget -------------------------------------------------------


class TestRuntimeBudget:
    def test_full_tree_under_ten_seconds(self):
        start = time.monotonic()
        result = run_lint([REPO_ROOT / "src"])
        elapsed = time.monotonic() - start
        assert result.files_checked > 50
        assert elapsed < 10.0, f"lint took {elapsed:.1f}s"


# -- the durable-campaign module under the determinism guard ------------------


class TestDurableModuleGuard:
    """sim/durable.py sits inside RPR001's guarded ``sim`` package.

    Its only wall-clock reads are the lease heartbeats, each carrying a
    reasoned suppression; stripping a suppression must re-fire RPR001, so
    the sanction stays a conscious, reviewed decision.
    """

    DURABLE = REPO_ROOT / "src" / "repro" / "sim" / "durable.py"

    def test_real_module_is_clean_with_sanctioned_heartbeats(self):
        result = run_lint([self.DURABLE])
        assert result.findings == []
        assert result.suppressed >= 2  # the two heartbeat wall reads

    def test_heartbeat_suppressions_carry_their_reasoning(self):
        noqa_lines = [
            line for line in self.DURABLE.read_text().splitlines()
            if "repro: noqa(RPR001)" in line
        ]
        assert len(noqa_lines) == 2
        assert all("never feeds a fingerprint" in line
                   for line in noqa_lines)

    def test_stripping_a_heartbeat_sanction_refires_rpr001(self, tmp_path):
        source = self.DURABLE.read_text()
        stripped = "\n".join(
            line.split("  # repro: noqa(RPR001)")[0]
            for line in source.splitlines()
        ) + "\n"
        assert "noqa(RPR001)" not in stripped
        target = tmp_path / "sim" / "durable.py"
        target.parent.mkdir(parents=True)
        target.write_text(stripped)
        result = run_lint([tmp_path], LintConfig(select=("RPR001",)))
        assert codes(result).count("RPR001") == 2
