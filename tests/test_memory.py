"""Cache, replacement-policy, and hierarchy tests."""

import pytest

from repro.config import CacheConfig, MachineConfig
from repro.errors import ConfigError
from repro.memory import (
    Cache,
    FIFOPolicy,
    LRUPolicy,
    MemLevel,
    MemoryHierarchy,
    RandomPolicy,
    make_policy,
)

SMALL = CacheConfig(1024, 2, 64, 1, name="small")  # 8 sets, 2-way


class TestCacheMapping:
    def test_line_and_set_and_tag(self):
        cache = Cache(SMALL)
        address = 3 * 8 * 64 + 5 * 64 + 17  # tag 3, set 5, offset 17
        assert cache.set_index(address) == 5
        assert cache.tag(address) == 3

    def test_same_line_same_set(self):
        cache = Cache(SMALL)
        assert cache.set_index(0x100) == cache.set_index(0x100 + 63 - (0x100 % 64))

    def test_addresses_mapping_to_set_collide(self):
        cache = Cache(SMALL)
        addresses = cache.addresses_mapping_to_set(3, 9)
        assert len(set(addresses)) == 9
        for address in addresses:
            assert cache.set_index(address) == 3


class TestCacheBehavior:
    def test_miss_then_hit(self):
        cache = Cache(SMALL)
        assert cache.access(0x40) is False
        assert cache.access(0x40) is True
        assert (cache.hits, cache.misses) == (1, 1)

    def test_contains_has_no_side_effects(self):
        cache = Cache(SMALL)
        assert cache.contains(0x40) is False
        assert cache.misses == 0
        cache.fill(0x40)
        assert cache.contains(0x40) is True

    def test_eviction_at_capacity(self):
        cache = Cache(SMALL)
        a, b, c = cache.addresses_mapping_to_set(0, 3)
        cache.access(a)
        cache.access(b)
        cache.access(c)  # evicts a under LRU
        assert cache.contains(a) is False
        assert cache.contains(b) and cache.contains(c)

    def test_lru_recency_protects_reused_line(self):
        cache = Cache(SMALL)
        a, b, c = cache.addresses_mapping_to_set(0, 3)
        cache.access(a)
        cache.access(b)
        cache.access(a)  # a most recent
        cache.access(c)  # evicts b
        assert cache.contains(a) is True
        assert cache.contains(b) is False

    def test_conflict_set_thrash_misses_every_time(self):
        """Nine addresses on one 8-way set: the paper's Figure-2 mechanism."""
        config = CacheConfig(8 * 64 * 4, 8, 64, 1)  # 4 sets, 8-way
        cache = Cache(config)
        addresses = cache.addresses_mapping_to_set(1, 9)
        for _ in range(3):
            for address in addresses:
                assert cache.access(address) is False

    def test_eight_addresses_on_8way_set_all_hit_after_warmup(self):
        config = CacheConfig(8 * 64 * 4, 8, 64, 1)
        cache = Cache(config)
        addresses = cache.addresses_mapping_to_set(1, 8)
        for address in addresses:
            cache.access(address)
        for address in addresses:
            assert cache.access(address) is True

    def test_flush_empties_cache(self):
        cache = Cache(SMALL)
        cache.access(0x40)
        cache.flush()
        assert cache.occupancy == 0
        assert cache.access(0x40) is False

    def test_fill_is_idempotent(self):
        cache = Cache(SMALL)
        cache.fill(0x40)
        assert cache.fill(0x40) is None
        assert cache.occupancy == 1

    def test_reset_stats(self):
        cache = Cache(SMALL)
        cache.access(0x40)
        cache.reset_stats()
        assert (cache.hits, cache.misses) == (0, 0)


class TestReplacementPolicies:
    def test_fifo_ignores_recency(self):
        cache = Cache(SMALL, policy=FIFOPolicy())
        a, b, c = cache.addresses_mapping_to_set(0, 3)
        cache.access(a)
        cache.access(b)
        cache.access(a)  # reuse does not protect a under FIFO
        cache.access(c)  # evicts a (first in)
        assert cache.contains(a) is False
        assert cache.contains(b) is True

    def test_random_policy_is_seedable(self):
        def victim_sequence(seed):
            cache = Cache(SMALL, policy=RandomPolicy(seed))
            addresses = cache.addresses_mapping_to_set(0, 8)
            survivors = []
            for address in addresses:
                cache.access(address)
            for address in addresses:
                survivors.append(cache.contains(address))
            return survivors

        assert victim_sequence(7) == victim_sequence(7)

    def test_factory(self):
        assert isinstance(make_policy("lru"), LRUPolicy)
        assert isinstance(make_policy("fifo"), FIFOPolicy)
        assert isinstance(make_policy("random"), RandomPolicy)
        with pytest.raises(ConfigError):
            make_policy("belady")


class TestHierarchy:
    def test_data_access_levels_and_latencies(self):
        machine = MachineConfig()
        hierarchy = MemoryHierarchy(machine)
        first = hierarchy.access_data(0x1000)
        assert first.level is MemLevel.MEMORY
        assert first.latency == 2 + 12 + 300
        second = hierarchy.access_data(0x1000)
        assert second.level is MemLevel.L1
        assert second.latency == 2

    def test_l2_hit_after_l1_eviction(self):
        machine = MachineConfig()
        hierarchy = MemoryHierarchy(machine)
        hierarchy.access_data(0x1000)
        # Evict 0x1000 from the 4-way L1 set with 4 conflicting lines.
        span = machine.l1d.num_sets * machine.l1d.line_bytes
        for tag in range(1, 5):
            hierarchy.access_data(0x1000 + tag * span)
        result = hierarchy.access_data(0x1000)
        assert result.level is MemLevel.L2
        assert result.latency == 2 + 12

    def test_instruction_path_uses_l1i(self):
        hierarchy = MemoryHierarchy(MachineConfig())
        hierarchy.access_instruction(0x2000)
        assert hierarchy.access_instruction(0x2000).level is MemLevel.L1
        # Data accesses to the same address do not touch the L1I.
        assert hierarchy.access_data(0x2000).level is MemLevel.L2

    def test_is_l2_miss_flag(self):
        hierarchy = MemoryHierarchy(MachineConfig())
        assert hierarchy.access_data(0x9000).is_l2_miss is True
        assert hierarchy.access_data(0x9000).is_l2_miss is False

    def test_access_counters_drain(self):
        hierarchy = MemoryHierarchy(MachineConfig())
        hierarchy.access_data(0x100)
        hierarchy.access_instruction(0x200)
        counts = hierarchy.drain_access_counts()
        assert counts["dcache"] == 1
        assert counts["icache"] == 1
        assert counts["l2"] == 2
        assert hierarchy.drain_access_counts()["dcache"] == 0

    def test_flush_all(self):
        hierarchy = MemoryHierarchy(MachineConfig())
        hierarchy.access_data(0x100)
        hierarchy.flush_all()
        assert hierarchy.access_data(0x100).level is MemLevel.MEMORY
