"""Property-based cache tests (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.config import CacheConfig
from repro.memory import Cache

CONFIG = CacheConfig(2048, 2, 64, 1)  # 16 sets, 2-way

addresses = st.integers(min_value=0, max_value=1 << 20)


@given(st.lists(addresses, max_size=200))
@settings(max_examples=50, deadline=None)
def test_occupancy_never_exceeds_capacity(stream):
    cache = Cache(CONFIG)
    capacity = CONFIG.num_sets * CONFIG.assoc
    for address in stream:
        cache.access(address)
        assert cache.occupancy <= capacity


@given(st.lists(addresses, max_size=200))
@settings(max_examples=50, deadline=None)
def test_hits_plus_misses_equals_lookups(stream):
    cache = Cache(CONFIG)
    for address in stream:
        cache.access(address)
    assert cache.hits + cache.misses == len(stream)


@given(st.lists(addresses, max_size=100), addresses)
@settings(max_examples=50, deadline=None)
def test_access_then_immediate_reaccess_hits(stream, probe):
    cache = Cache(CONFIG)
    for address in stream:
        cache.access(address)
    cache.access(probe)
    assert cache.access(probe) is True


@given(st.lists(addresses, max_size=200))
@settings(max_examples=50, deadline=None)
def test_contains_agrees_with_hit_outcome(stream):
    cache = Cache(CONFIG)
    for address in stream:
        expected = cache.contains(address)
        assert cache.access(address) is expected


@given(st.lists(addresses, min_size=1, max_size=60))
@settings(max_examples=50, deadline=None)
def test_mru_line_survives_any_single_fill(stream):
    """Under LRU the most recently used line is never the next victim."""
    cache = Cache(CONFIG)
    for address in stream:
        cache.access(address)
    mru = stream[-1]
    # One new conflicting fill in the same set must not evict the MRU line.
    conflicting = mru + CONFIG.num_sets * CONFIG.line_bytes
    cache.access(conflicting)
    assert cache.contains(mru) is True


@given(st.integers(min_value=0, max_value=15), st.integers(min_value=1, max_value=12))
@settings(max_examples=50, deadline=None)
def test_addresses_mapping_to_set_property(set_index, count):
    cache = Cache(CONFIG)
    generated = cache.addresses_mapping_to_set(set_index, count)
    assert len({cache.tag(a) for a in generated}) == count
    assert all(cache.set_index(a) == set_index for a in generated)
