"""Claims-registry completeness tests."""

from pathlib import Path

import pytest

from repro.paper import CLAIMS, Standing, claim, summary_table

REPO = Path(__file__).resolve().parent.parent


class TestRegistry:
    def test_every_claim_names_an_existing_target(self):
        for entry in CLAIMS:
            assert (REPO / entry.verified_by).exists(), entry.claim_id

    def test_ids_are_unique(self):
        ids = [c.claim_id for c in CLAIMS]
        assert len(ids) == len(set(ids))

    def test_partial_claims_cite_a_deviation(self):
        for entry in CLAIMS:
            if entry.standing is Standing.PARTIAL:
                assert entry.deviation, entry.claim_id

    def test_deviations_exist_in_experiments_md(self):
        text = (REPO / "EXPERIMENTS.md").read_text()
        for entry in CLAIMS:
            if entry.deviation:
                assert f"**{entry.deviation} " in text or f"{entry.deviation} —" in text, (
                    entry.claim_id
                )

    def test_every_figure_is_covered(self):
        sources = " ".join(c.source for c in CLAIMS)
        for artifact in ("Fig. 3", "Fig. 4", "Fig. 5", "Fig. 6",
                         "§5.5", "§5.6", "§3.3"):
            assert artifact in sources, artifact

    def test_lookup(self):
        assert claim("attack-severity").source.startswith("Fig. 5")
        with pytest.raises(KeyError):
            claim("cold-fusion")

    def test_summary_table_renders(self):
        table = summary_table()
        assert "attack-severity" in table
        assert "reproduced" in table
