"""Hardened batch runner: retries, timeouts, crash recovery, quarantine.

Worker chaos is injected through :class:`~repro.faults.plan.WorkerFaultPlan`
on the spec's own config — deterministic per attempt number, so every
failure shape here (crash → pool break → serial fallback, hang → timeout,
transient → retry-then-succeed) reproduces identically at any job count.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.config import scaled_config
from repro.errors import SimulationError
from repro.faults import FaultPlan, SensorFaultPlan, WorkerFaultPlan
from repro.sim import RunFailure, RunResult, RunSpec, run_many, spec_fingerprint
from repro.sim.parallel import (
    RUNNER_METRICS,
    _backoff_seconds,
    _sweep_stale_tmp,
)


def tiny_config(policy: str = "stop_and_go", **kwargs):
    kwargs.setdefault("time_scale", 20_000.0)
    kwargs.setdefault("quantum_cycles", 3_000)
    return scaled_config(**kwargs).with_policy(policy)


def chaos_spec(workloads, **worker_kwargs):
    config = tiny_config().with_faults(
        FaultPlan(worker=WorkerFaultPlan(**worker_kwargs))
    )
    return RunSpec(tuple(workloads), config)


class TestValidation:
    def test_bad_knobs_rejected(self):
        spec = RunSpec(("gcc", "swim"), tiny_config())
        with pytest.raises(SimulationError):
            run_many([spec], retries=-1, cache=False)
        with pytest.raises(SimulationError):
            run_many([spec], timeout=0.0, cache=False)

    def test_backoff_is_deterministic_and_grows(self):
        assert _backoff_seconds("abc", 1) == _backoff_seconds("abc", 1)
        assert _backoff_seconds("abc", 2) > _backoff_seconds("abc", 1)
        assert _backoff_seconds("abc", 1) != _backoff_seconds("abd", 1)


class TestRetryAndTimeout:
    def test_transient_failure_retries_then_succeeds(self):
        spec = chaos_spec(("gcc", "swim"), fail_attempts=1)
        before = RUNNER_METRICS.counters.get("runner.retries", 0)
        result = run_many([spec], jobs=1, cache=False, retries=1)[0]
        assert isinstance(result, RunResult) and result.cycles > 0
        assert RUNNER_METRICS.counters["runner.retries"] == before + 1

    def test_retries_exhausted_raises_by_default(self):
        spec = chaos_spec(("gcc", "swim"), fail_attempts=5)
        with pytest.raises(SimulationError, match="failed"):
            run_many([spec], jobs=1, cache=False, retries=1)

    def test_hung_spec_times_out_serially(self):
        spec = chaos_spec(("gcc", "swim"), hang_attempts=5, hang_seconds=5.0)
        failure = run_many(
            [spec], jobs=1, cache=False, timeout=0.2, raise_on_error=False
        )[0]
        assert isinstance(failure, RunFailure)
        assert failure.kind == "timeout"
        assert failure.attempts == 1
        assert not failure.ok

    def test_hung_spec_times_out_in_pool_without_stalling_others(self):
        hang = chaos_spec(("gcc", "swim"), hang_attempts=5, hang_seconds=30.0)
        good = RunSpec(("gzip", "mcf"), tiny_config())
        results = run_many(
            [hang, good], jobs=2, cache=False, timeout=2.0,
            raise_on_error=False,
        )
        assert isinstance(results[0], RunFailure)
        assert results[0].kind == "timeout"
        assert isinstance(results[1], RunResult)


class TestCrashRecovery:
    def test_worker_crash_falls_back_to_serial(self):
        crash = chaos_spec(("gcc", "swim"), crash_attempts=10)
        good = RunSpec(("gzip", "mcf"), tiny_config())
        before = RUNNER_METRICS.counters.get("runner.pool_breaks", 0)
        results = run_many(
            [crash, good], jobs=2, cache=False, raise_on_error=False
        )
        assert RUNNER_METRICS.counters["runner.pool_breaks"] > before
        # The poisoned spec fails (in-process the crash raises FaultError);
        # every other spec still gets its result.
        assert isinstance(results[0], RunFailure)
        assert results[1] == run_many([good], jobs=1, cache=False)[0]

    def test_crash_then_recover_on_retry(self):
        crash_once = chaos_spec(("gcc", "swim"), crash_attempts=1)
        good = RunSpec(("gzip", "mcf"), tiny_config())
        results = run_many([crash_once, good], jobs=2, cache=False, retries=1)
        assert all(isinstance(r, RunResult) for r in results)


class TestPartialResults:
    def test_failure_slots_are_index_aligned(self):
        good_a = RunSpec(("gcc", "swim"), tiny_config())
        bad = chaos_spec(("gzip", "mcf"), fail_attempts=5)
        good_b = RunSpec(("vpr", "art"), tiny_config())
        results = run_many(
            [good_a, bad, good_b], jobs=1, cache=False, raise_on_error=False
        )
        assert isinstance(results[0], RunResult)
        assert isinstance(results[1], RunFailure)
        assert results[1].workloads == ("gzip", "mcf")
        assert results[1].fingerprint == spec_fingerprint(bad)
        assert isinstance(results[2], RunResult)

    def test_raise_names_the_failed_specs(self):
        bad = chaos_spec(("gzip", "mcf"), fail_attempts=5)
        with pytest.raises(SimulationError, match=r"gzip\+mcf.*error"):
            run_many([bad], jobs=1, cache=False)

    def test_failures_are_never_cached(self, tmp_path):
        bad = chaos_spec(("gzip", "mcf"), fail_attempts=5)
        run_many([bad], jobs=1, cache_dir=tmp_path, raise_on_error=False)
        assert list(tmp_path.glob("*.json")) == []


class TestCacheHygiene:
    def test_corrupt_entry_is_quarantined_and_rerun(self, tmp_path):
        spec = RunSpec(("gcc", "swim"), tiny_config())
        key = spec_fingerprint(spec)
        (tmp_path / f"{key}.json").write_text("{not json")
        before = RUNNER_METRICS.counters.get("cache.quarantined.unreadable", 0)
        result = run_many([spec], jobs=1, cache_dir=tmp_path)[0]
        assert result.cycles > 0
        quarantined = tmp_path / "quarantine" / f"{key}.json"
        assert quarantined.read_text() == "{not json"
        assert (
            RUNNER_METRICS.counters["cache.quarantined.unreadable"]
            == before + 1
        )
        # The re-run published a fresh, loadable entry in the old slot.
        assert run_many([spec], jobs=1, cache_dir=tmp_path)[0] == result

    def test_fingerprint_mismatch_is_quarantined(self, tmp_path):
        spec = RunSpec(("gcc", "swim"), tiny_config())
        run_many([spec], jobs=1, cache_dir=tmp_path)
        key = spec_fingerprint(spec)
        entry = tmp_path / f"{key}.json"
        payload = json.loads(entry.read_text())
        payload["fingerprint"] = "0" * 64
        entry.write_text(json.dumps(payload))
        run_many([spec], jobs=1, cache_dir=tmp_path)
        assert (tmp_path / "quarantine" / f"{key}.json").exists()

    def test_bad_shape_is_quarantined(self, tmp_path):
        spec = RunSpec(("gcc", "swim"), tiny_config())
        key = spec_fingerprint(spec)
        (tmp_path / f"{key}.json").write_text(
            json.dumps({"fingerprint": key, "kind": "run", "result": {}})
        )
        before = RUNNER_METRICS.counters.get("cache.quarantined.bad_shape", 0)
        run_many([spec], jobs=1, cache_dir=tmp_path)
        assert (
            RUNNER_METRICS.counters["cache.quarantined.bad_shape"]
            == before + 1
        )

    def test_stale_tmp_swept_live_tmp_kept(self, tmp_path):
        dead = tmp_path / "aaaa.json.999999.tmp"
        dead.write_text("partial")
        live = tmp_path / f"bbbb.json.{os.getpid()}.tmp"
        live.write_text("in flight")
        unparsable = tmp_path / "cccc.json.notapid.tmp"
        unparsable.write_text("?")
        assert _sweep_stale_tmp(tmp_path) == 1
        assert not dead.exists()
        assert live.exists() and unparsable.exists()


class TestFaultedRunsThroughTheRunner:
    def faulted_spec(self):
        config = tiny_config("sedation").with_faults(
            FaultPlan(seed=9, sensor=SensorFaultPlan(mode="dropout", rate=0.2))
        )
        return RunSpec(("gzip", "variant2"), config)

    def test_cold_warm_and_parallel_byte_identity(self, tmp_path):
        spec = self.faulted_spec()
        cold = run_many([spec], jobs=1, cache_dir=tmp_path)[0]
        warm = run_many([spec], jobs=1, cache_dir=tmp_path)[0]
        parallel = run_many([spec, spec], jobs=2, cache=False)
        assert cold == warm == parallel[0] == parallel[1]

    def test_fault_plan_separates_cache_entries(self, tmp_path):
        clean = RunSpec(("gzip", "variant2"), tiny_config("sedation"))
        faulted = self.faulted_spec()
        results = run_many([clean, faulted], jobs=1, cache_dir=tmp_path)
        assert len(list(tmp_path.glob("*.json"))) == 2
        assert results[0] != results[1]


class TestGracefulInterrupt:
    """Operator interrupts drain to partial results instead of unwinding.

    The interrupt is injected via ``WorkerFaultPlan.interrupt_attempts``,
    which fires once per process per fingerprint — so every mix here is
    distinct from the other interrupt tests in the suite.
    """

    def test_serial_interrupt_books_partial_results(self, tmp_path):
        specs = [
            RunSpec(("gcc", "gzip"), tiny_config()),
            chaos_spec(("ammp", "applu"), interrupt_attempts=1),
            RunSpec(("mcf", "art"), tiny_config()),
        ]
        before = RUNNER_METRICS.counters.get("runner.interrupts", 0)
        results = run_many(
            specs, jobs=1, cache_dir=tmp_path, batch=False,
            raise_on_error=False,
        )
        assert isinstance(results[0], RunResult)
        assert [r.kind for r in results[1:]] == ["interrupted"] * 2
        assert "operator interrupt" in results[1].error
        assert RUNNER_METRICS.counters["runner.interrupts"] == before + 1
        # work already paid for is kept (and cached); nothing half-written
        fps = [spec_fingerprint(s) for s in specs]
        assert (tmp_path / f"{fps[0]}.json").exists()
        assert not (tmp_path / f"{fps[1]}.json").exists()
        assert not list(tmp_path.glob("*.tmp"))

    def test_interrupt_reraises_after_cleanup_by_default(self, tmp_path):
        specs = [chaos_spec(("apsi", "lucas"), interrupt_attempts=1)]
        with pytest.raises(KeyboardInterrupt, match="unfinished"):
            run_many(specs, jobs=1, cache_dir=tmp_path, batch=False)
        assert not list(tmp_path.glob("*.tmp"))

    def test_pool_interrupt_drains_and_fills_every_slot(self):
        specs = [
            RunSpec(("gcc", "mcf"), tiny_config()),
            chaos_spec(("art", "swim"), interrupt_attempts=1),
            RunSpec(("vpr", "twolf"), tiny_config()),
            RunSpec(("eon", "gzip"), tiny_config()),
        ]
        before = RUNNER_METRICS.counters.get("runner.interrupts", 0)
        results = run_many(
            specs, jobs=2, cache=False, batch=False, raise_on_error=False
        )
        assert len(results) == len(specs)
        failures = [r for r in results if isinstance(r, RunFailure)]
        assert failures
        assert all(r.kind == "interrupted" for r in failures)
        assert all(
            isinstance(r, (RunResult, RunFailure)) for r in results
        )
        assert RUNNER_METRICS.counters["runner.interrupts"] >= before + 1
