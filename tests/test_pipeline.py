"""SMT core tests: timing, structural limits, SMT behaviors, gating."""

import dataclasses

import pytest

from repro.blocks import BPRED, DCACHE, INT_RF, WINDOW
from repro.config import MachineConfig
from repro.errors import PipelineError
from repro.isa import assemble
from repro.pipeline import SMTCore
from repro.pipeline.fetch import icount_select, make_fetch_selector
from repro.pipeline.thread import ThreadContext
from repro.workloads.malicious import conflict_addresses
from repro.workloads.program_source import ProgramSource


def core_for(sources, **machine_kwargs):
    machine = MachineConfig(**machine_kwargs)
    return SMTCore(machine, sources)


def program_core(*sources_text, **machine_kwargs):
    texts = list(sources_text)
    machine_kwargs.setdefault("num_threads", len(texts))
    sources = [
        ProgramSource(assemble(text, name=f"p{i}"), i)
        for i, text in enumerate(texts)
    ]
    core = core_for(sources, **machine_kwargs)
    for source in sources:
        source.prefill(core.hierarchy)
    return core


IDLE = "halt"


class TestBasicExecution:
    def test_serial_chain_ipc_is_about_one(self):
        chain = "L:\n" + "addl $1, $1, $25\n" * 16 + "br L"
        core = program_core(chain, IDLE)
        core.run_cycles(2000)
        assert 0.7 < core.thread_ipc(0) <= 1.1

    def test_independent_adds_saturate_alus(self):
        """4 int ALUs shared with the loop branch: IPC close to 4 solo."""
        body = "\n".join(f"addl ${1 + i % 16}, $25, $26" for i in range(48))
        core = program_core(f"L:\n{body}\nbr L", IDLE)
        core.run_cycles(2000)
        assert core.thread_ipc(0) > 3.0

    def test_halted_program_stops_fetching(self):
        core = program_core("nop\nnop\nhalt", IDLE)
        core.run_cycles(100)
        assert core.threads[0].committed == 2
        assert core.threads[0].halted is True
        assert core.all_halted() is True

    def test_commit_is_in_order_per_thread(self):
        """A slow first instruction holds back later (faster) ones."""
        source = "mull $1, $25, $26\naddl $2, $25, $26\nhalt"
        core = program_core(source, IDLE)
        # After decode(2) + issue + mult latency(3), both commit together;
        # the add alone would have committed earlier.
        committed_at = {}
        for _ in range(30):
            before = core.threads[0].committed
            core.step()
            if core.threads[0].committed != before:
                committed_at[core.threads[0].committed] = core.cycle
        assert committed_at  # both eventually commit
        assert core.threads[0].committed == 2

    def test_mispredict_gates_fetch(self):
        """An always-mispredicted alternating branch slows the front end."""
        loop = "L:\n" + "addl $1, $25, $26\n" * 2 + "br L"
        baseline = program_core(loop, IDLE)
        baseline.run_cycles(1000)
        # Force mispredicts by monkeypatching the predictor to always miss.
        core = program_core(loop, IDLE)
        core.threads[0].source.predictor.update = (
            lambda thread, pc, taken, target: False
        )
        core.run_cycles(1000)
        assert core.thread_ipc(0) < baseline.thread_ipc(0) * 0.75


class TestStructuralLimits:
    def test_window_occupancy_bounded_by_ruu_size(self):
        chain = "L:\n" + "addl $1, $1, $25\n" * 32 + "br L"
        core = program_core(chain, IDLE, ruu_size=16)
        peak = 0
        for _ in range(500):
            core.step()
            peak = max(peak, core.window_used)
        assert peak <= 16

    def test_lsq_occupancy_bounded(self):
        loads = "L:\n" + "ldq $4, 0x100\n" * 16 + "br L"
        core = program_core(loads, IDLE, lsq_size=4)
        peak = 0
        for _ in range(500):
            core.step()
            peak = max(peak, core.lsq_used)
        assert peak <= 4

    def test_mem_ports_limit_load_throughput(self):
        loads = "L:\n" + "\n".join(f"ldq ${4 + i % 8}, {0x100 + 64 * (i % 4)}" for i in range(16)) + "\nbr L"
        narrow = program_core(loads, IDLE, mem_ports=1)
        narrow.run_cycles(1500)
        wide = program_core(loads, IDLE, mem_ports=2)
        wide.run_cycles(1500)
        assert narrow.thread_ipc(0) < wide.thread_ipc(0)

    def test_issue_width_caps_total_throughput(self):
        body = "\n".join(f"addl ${1 + i % 16}, $25, $26" for i in range(48))
        program = f"L:\n{body}\nbr L"
        narrow = program_core(program, program, issue_width=2, int_alus=8)
        narrow.run_cycles(1500)
        assert narrow.total_committed() <= 2 * 1500 * 1.05


class TestSquashOnL2Miss:
    def test_l2_missing_thread_does_not_clog_window(self):
        """The paper's optimization: a miss-blocked thread leaves the shared
        window to its co-runner."""
        addresses = conflict_addresses(MachineConfig())
        misses = "L:\n" + "\n".join(f"ldq $4, {a:#x}" for a in addresses) + "\nbr L"
        adds = "L:\n" + "addl $1, $25, $26\n" * 16 + "br L"
        core = program_core(misses, adds)
        core.run_cycles(3000)
        # The ALU thread should run essentially unimpeded.
        assert core.thread_ipc(1) > 3.0

    def test_without_squash_victim_suffers_more(self):
        addresses = conflict_addresses(MachineConfig())
        misses = "L:\n" + "\n".join(f"ldq ${4 + i}, {a:#x}" for i, a in enumerate(addresses)) + "\nbr L"
        adds = "L:\n" + "addl $1, $25, $26\n" * 16 + "br L"
        with_squash = program_core(misses, adds, squash_on_l2_miss=True)
        with_squash.run_cycles(3000)
        without = program_core(misses, adds, squash_on_l2_miss=False)
        without.run_cycles(3000)
        assert without.thread_ipc(1) <= with_squash.thread_ipc(1)

    def test_miss_block_set_and_cleared(self):
        source = "ldq $4, 0x90000\nhalt"
        core = program_core(source, IDLE)
        saw_block = False
        for _ in range(400):
            core.step()
            if core.threads[0].miss_block is not None:
                saw_block = True
        assert saw_block
        assert core.threads[0].miss_block is None
        assert core.threads[0].committed == 1


class TestSedationGating:
    def test_sedated_thread_stops_fetching(self):
        adds = "L:\n" + "addl $1, $25, $26\n" * 8 + "br L"
        core = program_core(adds, adds)
        core.run_cycles(200)
        fetched_before = core.threads[0].fetched
        core.set_sedated(0, True)
        core.run_cycles(200)
        # In-flight instructions drain, but no new fetches happen.
        assert core.threads[0].fetched - fetched_before <= 16
        assert core.sedated_threads() == [0]

    def test_release_resumes_fetching(self):
        adds = "L:\n" + "addl $1, $25, $26\n" * 8 + "br L"
        core = program_core(adds, adds)
        core.set_sedated(0, True)
        core.run_cycles(200)
        core.set_sedated(0, False)
        before = core.threads[0].fetched
        core.run_cycles(200)
        assert core.threads[0].fetched > before

    def test_other_thread_speeds_up_during_sedation(self):
        adds = "L:\n" + "addl $1, $25, $26\n" * 16 + "br L"
        shared = program_core(adds, adds)
        shared.run_cycles(1000)
        shared_ipc = shared.thread_ipc(1)
        sedated = program_core(adds, adds)
        sedated.set_sedated(0, True)
        sedated.run_cycles(1000)
        assert sedated.thread_ipc(1) > shared_ipc * 1.3


class TestAccessCounting:
    def test_rf_counts_reflect_reads_and_writes(self):
        """Each addl reads two int registers and writes one."""
        adds = "L:\n" + "addl $1, $25, $26\n" * 16 + "br L"
        core = program_core(adds, IDLE)
        core.run_cycles(1000)
        committed = core.threads[0].committed
        rf = core.access_counts[0][INT_RF]
        per_instr = rf / committed
        assert 2.3 < per_instr < 3.1  # ~3 per addl, diluted by branches

    def test_branch_instructions_touch_bpred(self):
        core = program_core("L: br L", IDLE)
        core.run_cycles(200)
        assert core.access_counts[0][BPRED] > 0

    def test_memory_ops_touch_dcache(self):
        core = program_core("L: ldq $4, 0x100\nbr L", IDLE)
        core.run_cycles(200)
        assert core.access_counts[0][DCACHE] > 0

    def test_window_counts_cover_dispatch_and_issue(self):
        core = program_core("L: addl $1, $25, $26\nbr L", IDLE)
        core.run_cycles(500)
        assert core.access_counts[0][WINDOW] >= 2 * core.threads[0].committed * 0.9


class TestSkipCycles:
    def test_skip_cycles_advances_clock_without_commits(self):
        adds = "L:\n" + "addl $1, $25, $26\n" * 8 + "br L"
        core = program_core(adds, IDLE)
        core.run_cycles(100)
        committed = core.threads[0].committed
        core.skip_cycles(500)
        assert core.cycle >= 600
        assert core.threads[0].committed == committed

    def test_in_flight_work_resumes_after_skip(self):
        core = program_core("mull $1, $25, $26\nhalt", IDLE)
        core.run_cycles(4)
        core.skip_cycles(100)
        core.run_cycles(50)
        assert core.threads[0].committed == 1

    def test_skip_zero_is_noop(self):
        core = program_core(IDLE, IDLE)
        core.skip_cycles(0)
        assert core.cycle == 0


class TestFetchPolicies:
    def test_icount_selects_lowest_counts(self):
        threads = [ThreadContext(i, None) for i in range(4)]
        for thread, count in zip(threads, (9, 2, 7, 4), strict=True):
            thread.icount = count
        chosen = icount_select(threads, 2)
        assert sorted(t.tid for t in chosen) == [1, 3]

    def test_icount_returns_all_when_few_runnable(self):
        threads = [ThreadContext(0, None)]
        assert icount_select(threads, 2) == threads

    def test_round_robin_rotates(self):
        selector = make_fetch_selector("round_robin")
        threads = [ThreadContext(i, None) for i in range(3)]
        first = selector(threads, 1)[0].tid
        second = selector(threads, 1)[0].tid
        assert first != second

    def test_icount_favors_fast_thread_for_fetch_share(self):
        """The paper: a high-IPC thread gets a larger share under ICOUNT."""
        fast = "L:\n" + "addl $1, $25, $26\n" * 16 + "br L"
        slow = "L:\n" + "mull $1, $1, $26\n" * 16 + "br L"
        core = program_core(fast, slow)
        core.run_cycles(2000)
        assert core.threads[0].fetched > core.threads[1].fetched


class TestConstruction:
    def test_source_count_must_match_threads(self):
        source = ProgramSource(assemble(IDLE), 0)
        with pytest.raises(PipelineError):
            SMTCore(MachineConfig(num_threads=2), [source])

    def test_four_thread_smt_runs(self):
        adds = "L:\n" + "addl $1, $25, $26\n" * 8 + "br L"
        core = program_core(adds, adds, adds, adds, num_threads=4)
        core.run_cycles(500)
        assert all(t.committed > 0 for t in core.threads)


class TestPartitionedWindow:
    def test_partition_caps_each_thread(self):
        flood = "L:\n" + "\n".join(
            f"addl ${1 + i % 16}, $25, $26" for i in range(48)
        ) + "\nbr L"
        core = program_core(flood, flood, ruu_size=32, ruu_partitioned=True)
        for _ in range(500):
            core.step()
            for thread in core.threads:
                assert len(thread.rob) <= 16

    def test_shared_window_allows_asymmetry(self):
        flood = "L:\n" + "\n".join(
            f"addl ${1 + i % 16}, $25, $26" for i in range(48)
        ) + "\nbr L"
        slow = "L:\n" + "mull $1, $1, $26\n" * 4 + "br L"
        core = program_core(flood, slow, ruu_size=32, ruu_partitioned=False)
        peak = 0
        for _ in range(500):
            core.step()
            peak = max(peak, len(core.threads[0].rob))
        assert peak > 16  # the flood may exceed its "share" when unpartitioned
