"""Property-based pipeline invariants over randomized workloads."""

import dataclasses

from hypothesis import given, settings, strategies as st

from repro.config import MachineConfig
from repro.pipeline import SMTCore
from repro.workloads.profiles import get_profile
from repro.workloads.synthetic import SyntheticSource


def random_profile_source(draw_seed, tid, load, branch, dep, dist):
    base = get_profile("gcc")
    profile = dataclasses.replace(
        base,
        ialu=max(0.0, 1.0 - load - branch - 0.1),
        load=load,
        store=0.05,
        branch=branch,
        imult=0.0,
        dep_fraction=dep,
        dep_distance_mean=dist,
    )
    return SyntheticSource(profile, tid, seed=draw_seed)


profile_params = st.tuples(
    st.integers(0, 2**16),
    st.floats(0.05, 0.35),
    st.floats(0.03, 0.25),
    st.floats(0.1, 1.0),
    st.floats(1.0, 10.0),
)


@given(profile_params, profile_params)
@settings(max_examples=15, deadline=None)
def test_pipeline_invariants_hold_for_random_workloads(p0, p1):
    sources = [
        random_profile_source(p0[0], 0, p0[1], p0[2], p0[3], p0[4]),
        random_profile_source(p1[0], 1, p1[1], p1[2], p1[3], p1[4]),
    ]
    machine = MachineConfig()
    core = SMTCore(machine, sources)
    for source in sources:
        source.prefill(core.hierarchy)

    for _ in range(40):
        core.run_cycles(25)
        # Structural occupancy invariants.
        assert 0 <= core.window_used <= machine.ruu_size
        assert 0 <= core.lsq_used <= machine.lsq_size
        for thread in core.threads:
            # A thread never commits more than it fetched.
            assert thread.committed <= thread.fetched
            # icount equals instructions in flight.
            assert thread.icount == len(thread.fetch_queue) + len(thread.rob)
            assert thread.icount >= 0

    # Window occupancy equals the sum of ROB residents.
    assert core.window_used == sum(
        1 for t in core.threads for u in t.rob if u.in_window
    )
    # Forward progress: at least one thread committed something.
    assert core.total_committed() > 0


@given(st.integers(0, 2**16))
@settings(max_examples=10, deadline=None)
def test_sedated_thread_commits_stop_quickly(seed):
    sources = [
        SyntheticSource(get_profile("gzip"), 0, seed=seed),
        SyntheticSource(get_profile("eon"), 1, seed=seed + 1),
    ]
    core = SMTCore(MachineConfig(), sources)
    for source in sources:
        source.prefill(core.hierarchy)
    core.run_cycles(500)
    core.set_sedated(0, True)
    core.run_cycles(600)  # drain
    committed = core.threads[0].committed
    core.run_cycles(500)
    assert core.threads[0].committed == committed


@given(st.integers(0, 2**16), st.integers(1, 400))
@settings(max_examples=10, deadline=None)
def test_skip_cycles_preserves_all_in_flight_work(seed, skip):
    sources = [
        SyntheticSource(get_profile("gcc"), 0, seed=seed),
        SyntheticSource(get_profile("swim"), 1, seed=seed + 1),
    ]
    reference = SMTCore(MachineConfig(), sources)
    for source in sources:
        source.prefill(reference.hierarchy)
    reference.run_cycles(300)
    in_flight = sum(t.icount for t in reference.threads)
    reference.skip_cycles(skip)
    # Nothing lost, nothing committed during the stall.
    assert sum(t.icount for t in reference.threads) == in_flight
    reference.run_cycles(2000)
    # The pipeline drains normally afterwards (no stuck uops).
    assert reference.total_committed() > 0
