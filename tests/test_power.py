"""Power model tests: energy tables and per-interval accounting."""

import pytest

from repro.blocks import BLOCK_IDS, INT_RF, NUM_BLOCKS
from repro.config import MachineConfig
from repro.errors import ConfigError, SimulationError
from repro.isa import assemble
from repro.pipeline import SMTCore
from repro.power import EnergyModel, PowerAccountant
from repro.workloads.program_source import ProgramSource

FREQ = 4.0e9


class TestEnergyModel:
    def test_default_covers_every_block(self):
        model = EnergyModel.default()
        assert len(model.energy_j) == NUM_BLOCKS
        assert len(model.leakage_w) == NUM_BLOCKS
        assert all(e > 0 for e in model.energy_j)

    def test_override_single_block(self):
        model = EnergyModel.default(energy_nj={"int_rf": 0.5})
        assert model.energy_j[INT_RF] == pytest.approx(0.5e-9)

    def test_unknown_block_override_rejected(self):
        with pytest.raises(ConfigError):
            EnergyModel.default(energy_nj={"alu9000": 1.0})
        with pytest.raises(ConfigError):
            EnergyModel.default(leakage_w={"alu9000": 1.0})

    def test_negative_energy_rejected(self):
        with pytest.raises(ConfigError):
            EnergyModel.default(energy_nj={"int_rf": -0.5})

    def test_block_power_formula(self):
        """1 access/cycle at 4 GHz with 0.1 nJ/access = 0.4 W dynamic."""
        model = EnergyModel.default(energy_nj={"int_rf": 0.1})
        seconds = 1000 / FREQ
        power = model.block_power(INT_RF, 1000, seconds)
        expected = 0.4 + model.leakage_w[INT_RF]
        assert power == pytest.approx(expected)

    def test_block_power_rejects_zero_interval(self):
        with pytest.raises(ConfigError):
            EnergyModel.default().block_power(INT_RF, 10, 0.0)

    def test_typical_powers_exceed_leakage(self):
        model = EnergyModel.default()
        typical = model.typical_powers(FREQ)
        for block in range(NUM_BLOCKS):
            assert typical[block] >= model.leakage_w[block]

    def test_total_leakage(self):
        model = EnergyModel.default()
        assert model.total_leakage_w == pytest.approx(sum(model.leakage_w))


def _make_core():
    adds = "L:\n" + "addl $1, $25, $26\n" * 16 + "br L"
    sources = [
        ProgramSource(assemble(adds, name="adds"), 0),
        ProgramSource(assemble("halt", name="idle"), 1),
    ]
    core = SMTCore(MachineConfig(), sources)
    for source in sources:
        source.prefill(core.hierarchy)
    return core


class TestPowerAccountant:
    def test_idle_core_dissipates_leakage_only(self):
        core = _make_core()
        model = EnergyModel.default()
        accountant = PowerAccountant(core, model, FREQ)
        core.skip_cycles(100)
        powers = accountant.block_powers()
        assert powers == pytest.approx(list(model.leakage_w))

    def test_active_rf_power_tracks_access_rate(self):
        core = _make_core()
        model = EnergyModel.default()
        accountant = PowerAccountant(core, model, FREQ)
        core.run_cycles(1000)
        powers = accountant.block_powers()
        rate = core.access_counts[0][INT_RF] / 1000
        expected = rate * model.energy_j[INT_RF] * FREQ + model.leakage_w[INT_RF]
        assert powers[INT_RF] == pytest.approx(expected, rel=1e-6)

    def test_interval_snapshot_advances(self):
        core = _make_core()
        accountant = PowerAccountant(core, EnergyModel.default(), FREQ)
        core.run_cycles(500)
        first = accountant.block_powers()
        core.skip_cycles(500)
        second = accountant.block_powers()
        assert second[INT_RF] < first[INT_RF]

    def test_zero_length_interval_rejected(self):
        core = _make_core()
        accountant = PowerAccountant(core, EnergyModel.default(), FREQ)
        core.run_cycles(10)
        accountant.block_powers()
        with pytest.raises(SimulationError):
            accountant.block_powers()

    def test_dynamic_scale_reduces_dynamic_only(self):
        core = _make_core()
        model = EnergyModel.default()
        core.run_cycles(1000)
        accountant_full = PowerAccountant(core, model, FREQ)
        core.run_cycles(1000)
        scaled = accountant_full.block_powers(dynamic_scale=0.5)
        dynamic = scaled[INT_RF] - model.leakage_w[INT_RF]
        rate = (core.access_counts[0][INT_RF]) / core.cycle  # approx
        assert dynamic > 0
        # Halving the scale halves only the dynamic component.
        core.run_cycles(1000)
        unscaled = accountant_full.block_powers(dynamic_scale=1.0)
        assert (unscaled[INT_RF] - model.leakage_w[INT_RF]) == pytest.approx(
            2 * dynamic, rel=0.25
        )

    def test_idle_powers_skips_interval(self):
        core = _make_core()
        model = EnergyModel.default()
        accountant = PowerAccountant(core, model, FREQ)
        core.skip_cycles(100)
        powers = accountant.idle_powers(100)
        assert powers == list(model.leakage_w)
        core.run_cycles(100)
        active = accountant.block_powers()
        assert active[INT_RF] > model.leakage_w[INT_RF]

    def test_thread_energy_attribution(self):
        core = _make_core()
        accountant = PowerAccountant(core, EnergyModel.default(), FREQ)
        core.run_cycles(1000)
        accountant.block_powers()
        assert accountant.thread_energy_j[0] > 0
        assert accountant.thread_energy_j[1] == pytest.approx(0.0, abs=1e-9)

    def test_total_chip_power_includes_other(self):
        core = _make_core()
        model = EnergyModel.default()
        accountant = PowerAccountant(core, model, FREQ)
        core.run_cycles(100)
        powers = accountant.block_powers()
        assert accountant.total_chip_power(powers) == pytest.approx(
            sum(powers) + model.other_power_w
        )
