"""OS-report log tests."""

from repro.blocks import INT_RF
from repro.core import OffenderReport, OSReportLog, ReportKind


def report(cycle=100, kind=ReportKind.SEDATED, thread=1, block=INT_RF):
    return OffenderReport(cycle, kind, thread, block, 356.6, weighted_average=9.5)


class TestOffenderReport:
    def test_describe_names_thread_and_block(self):
        text = report().describe()
        assert "thread 1" in text
        assert "int_rf" in text
        assert "sedated" in text
        assert "356.6" in text

    def test_describe_chipwide_event(self):
        text = OffenderReport(5, ReportKind.SAFETY_NET, None, None, 358.2).describe()
        assert "all threads" in text
        assert "chip" in text


class TestOSReportLog:
    def test_record_and_length(self):
        log = OSReportLog()
        assert len(log) == 0
        log.record(report())
        assert len(log) == 1

    def test_sedations_filter(self):
        log = OSReportLog()
        log.record(report(kind=ReportKind.SEDATED))
        log.record(report(kind=ReportKind.RELEASED))
        log.record(report(kind=ReportKind.SAFETY_NET, thread=None))
        assert len(log.sedations()) == 1

    def test_counts_by_thread(self):
        log = OSReportLog()
        log.record(report(thread=1))
        log.record(report(thread=1))
        log.record(report(thread=0))
        log.record(report(kind=ReportKind.RELEASED, thread=1))  # not a sedation
        assert log.sedation_counts_by_thread() == {1: 2, 0: 1}

    def test_empty_log_is_falsy_but_usable(self):
        """Regression guard: an empty log must still be a valid sink
        (a `x or default()` idiom once silently replaced it)."""
        log = OSReportLog()
        assert not log  # falsy when empty — by design
        assert log.sedation_counts_by_thread() == {}
        assert log.sedations() == []
