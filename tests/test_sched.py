"""OS-scheduler substrate tests (paper §3.3)."""

import pytest

from repro.config import scaled_config
from repro.errors import SimulationError, WorkloadError
from repro.sched import (
    Job,
    PhaseAwareJob,
    RoundRobinScheduler,
    SedationAwareScheduler,
    SMTMachine,
    SymbioticScheduler,
    make_job,
)

CFG = scaled_config(time_scale=8000.0, quantum_cycles=12_000)


def benign_jobs():
    return [make_job("gzip"), make_job("gcc"), make_job("swim")]


def attacker():
    return PhaseAwareJob(
        name="mal", workload="variant2",
        benign_workload="gcc", attack_workload="variant2",
    )


class TestJobs:
    def test_make_job_defaults_workload_to_name(self):
        job = make_job("gzip")
        assert job.workload == "gzip"

    def test_make_job_requires_name(self):
        with pytest.raises(WorkloadError):
            make_job("")

    def test_phase_aware_job_switches_workload(self):
        job = attacker()
        assert job.workload_for(monitored=True) == "gcc"
        assert job.workload_for(monitored=False) == "variant2"
        assert job.attacks_launched == 1

    def test_record_accumulates(self):
        job = make_job("gzip")
        job.record(100, solo=False)
        job.record(50, solo=True)
        assert job.committed == 150
        assert job.quanta_run == 2
        assert job.solo_quanta == 1
        assert job.progress_per_quantum == 75


class TestSMTMachine:
    def test_quantum_runs_pair(self):
        machine = SMTMachine(CFG)
        jobs = [make_job("gzip"), make_job("gcc")]
        outcome = machine.run_quantum(jobs)
        assert outcome.jobs == ("gzip", "gcc")
        assert all(c > 0 for c in outcome.committed)
        assert jobs[0].committed == outcome.committed[0]

    def test_solo_quantum_pads_with_idle(self):
        machine = SMTMachine(CFG)
        job = make_job("gzip")
        outcome = machine.run_quantum([job])
        assert len(outcome.committed) == 1
        assert job.solo_quanta == 1

    def test_rejects_too_many_jobs(self):
        machine = SMTMachine(CFG)
        with pytest.raises(SimulationError):
            machine.run_quantum([make_job("gzip")] * 3)

    def test_quanta_counter(self):
        machine = SMTMachine(CFG)
        machine.run_quantum([make_job("gzip")])
        machine.run_quantum([make_job("gcc")])
        assert machine.quanta_executed == 2


class TestRoundRobin:
    def test_all_jobs_make_progress(self):
        scheduler = RoundRobinScheduler(CFG, benign_jobs())
        report = scheduler.run(quanta=6)
        assert report.quanta == 6
        assert len(report.outcomes) == 6
        for job in report.jobs:
            assert job.committed > 0

    def test_needs_two_jobs(self):
        with pytest.raises(SimulationError):
            RoundRobinScheduler(CFG, [make_job("gzip")])

    def test_report_lookup(self):
        scheduler = RoundRobinScheduler(CFG, benign_jobs())
        report = scheduler.run(quanta=3)
        assert report.committed_of("gzip") == report.jobs[0].committed
        with pytest.raises(SimulationError):
            report.committed_of("doom")


class TestSymbiotic:
    def test_monitoring_then_commit(self):
        jobs = [make_job("gzip"), make_job("gcc"), attacker()]
        scheduler = SymbioticScheduler(CFG, jobs, commit_quanta=3)
        report = scheduler.run(quanta=9)
        assert report.quanta == 9
        assert len(report.outcomes) == 9

    def test_phase_aware_attacker_attacks_only_when_unmonitored(self):
        jobs = [make_job("gzip"), make_job("gcc"), attacker()]
        scheduler = SymbioticScheduler(CFG, jobs, commit_quanta=4)
        scheduler.run(quanta=10)
        mal = jobs[2]
        # The attacker ran at least one committed-phase quantum as variant2
        # while presenting as gcc during monitoring.
        assert mal.attacks_launched >= 0  # counted per unmonitored call
        assert mal.quanta_run > 0

    def test_summary_mentions_jobs(self):
        jobs = benign_jobs()
        scheduler = SymbioticScheduler(CFG, jobs, commit_quanta=2)
        report = scheduler.run(quanta=5)
        text = report.summary()
        assert "symbiotic" in text and "gzip" in text


class TestSedationAware:
    def test_attacker_gets_marked_and_evicted(self):
        jobs = [make_job("gzip"), make_job("gcc"), attacker()]
        scheduler = SedationAwareScheduler(CFG, jobs, sedated_threshold=0.15)
        report = scheduler.run(quanta=14)
        mal = jobs[2]
        assert mal.marked_malicious is True
        # After eviction the benign jobs continue to be scheduled.
        tail = report.outcomes[-1]
        assert "mal" not in tail.jobs

    def test_benign_jobs_never_marked(self):
        jobs = benign_jobs()
        scheduler = SedationAwareScheduler(CFG, jobs, sedated_threshold=0.15)
        scheduler.run(quanta=8)
        assert not any(job.marked_malicious for job in jobs)

    def test_sedated_fraction_separates_attacker_from_hot_benchmark(self):
        jobs = [make_job("gzip"), attacker()]
        scheduler = SedationAwareScheduler(CFG, jobs, sedated_threshold=0.99)
        scheduler.run(quanta=6)
        assert scheduler.sedated_fraction_of("mal") > \
            2 * scheduler.sedated_fraction_of("gzip")
        assert set(scheduler.report_tally()) == {"gzip", "mal"}
