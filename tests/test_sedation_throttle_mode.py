"""Throttled-sedation ablation tests (gate vs throttle)."""

import dataclasses

import pytest

from repro.config import SedationConfig, scaled_config
from repro.errors import ConfigError, PipelineError
from repro.sim import run_workloads

CFG = scaled_config(time_scale=8000.0, quantum_cycles=15_000)


def throttle_config(modulus=8):
    sedation = dataclasses.replace(
        CFG.sedation, sedation_mode="throttle", throttle_modulus=modulus
    )
    return dataclasses.replace(CFG, sedation=sedation).with_policy("sedation")


class TestConfig:
    def test_mode_validation(self):
        with pytest.raises(ConfigError):
            SedationConfig(sedation_mode="nap")
        with pytest.raises(ConfigError):
            SedationConfig(sedation_mode="throttle", throttle_modulus=1)

    def test_default_is_the_papers_gate(self):
        assert SedationConfig().sedation_mode == "gate"


class TestThrottleMechanics:
    def test_core_throttle_slows_fetch(self):
        from repro.config import MachineConfig
        from repro.isa import assemble
        from repro.pipeline import SMTCore
        from repro.workloads.program_source import ProgramSource

        adds = "L:\n" + "addl $1, $25, $26\n" * 16 + "br L"
        sources = [
            ProgramSource(assemble(adds, name="a"), 0),
            ProgramSource(assemble(adds, name="b"), 1),
        ]
        core = SMTCore(MachineConfig(), sources)
        for source in sources:
            source.prefill(core.hierarchy)
        core.run_cycles(500)
        baseline = core.threads[0].committed
        core.set_throttled(0, 8)
        before = core.threads[0].committed
        core.run_cycles(500)
        throttled_rate = core.threads[0].committed - before
        assert throttled_rate < 0.5 * baseline

    def test_negative_modulus_rejected(self):
        from repro.config import MachineConfig
        from repro.isa import assemble
        from repro.pipeline import SMTCore
        from repro.workloads.program_source import ProgramSource

        core = SMTCore(
            MachineConfig(),
            [ProgramSource(assemble("halt"), 0), ProgramSource(assemble("halt"), 1)],
        )
        with pytest.raises(PipelineError):
            core.set_throttled(0, -1)


class TestThrottleDefense:
    def test_throttle_mode_also_defends(self):
        attacked = run_workloads(
            CFG.with_policy("stop_and_go"), ["gzip", "variant2"]
        )
        throttled = run_workloads(throttle_config(), ["gzip", "variant2"])
        assert throttled.threads[0].ipc > attacked.threads[0].ipc
        assert throttled.emergencies <= attacked.emergencies

    def test_throttled_attacker_keeps_some_progress(self):
        """The ablation's trade-off: the culprit is slowed, not frozen."""
        gated = run_workloads(CFG.with_policy("sedation"), ["gzip", "variant2"])
        throttled = run_workloads(throttle_config(), ["gzip", "variant2"])
        # Both policies defend; the throttled attacker retains throughput
        # during its penalty windows (it is never fully fetch-gated).
        assert throttled.threads[1].committed > 0
        assert gated.threads[0].ipc > 0.8 * throttled.threads[0].ipc
