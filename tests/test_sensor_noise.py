"""Sensor-noise robustness tests.

Real on-die thermal sensors carry noise and offset; the paper's defense
keys on temperature thresholds, so it must tolerate realistic sensor error.
"""

import dataclasses

import pytest

from repro.config import ThermalConfig, scaled_config
from repro.errors import ConfigError
from repro.sim import run_workloads
from repro.thermal import RCThermalModel, SensorBank

CFG = scaled_config(time_scale=8000.0, quantum_cycles=15_000)


def noisy(config, sigma, seed=1234):
    thermal = dataclasses.replace(
        config.thermal, sensor_noise_k=sigma, sensor_noise_seed=seed
    )
    return dataclasses.replace(config, thermal=thermal)


class TestSensorBankNoise:
    def test_noise_perturbs_readings(self):
        model = RCThermalModel(ThermalConfig())
        clean = SensorBank(model, 358.0)
        dirty = SensorBank(model, 358.0, noise_k=0.5)
        clean_reading = clean.sample(0)
        dirty_reading = dirty.sample(0)
        assert not (clean_reading.temperatures == dirty_reading.temperatures).all()

    def test_noise_is_seeded(self):
        model = RCThermalModel(ThermalConfig())
        a = SensorBank(model, 358.0, noise_k=0.5, noise_seed=7).sample(0)
        b = SensorBank(model, 358.0, noise_k=0.5, noise_seed=7).sample(0)
        assert (a.temperatures == b.temperatures).all()

    def test_zero_noise_is_exact(self):
        model = RCThermalModel(ThermalConfig())
        bank = SensorBank(model, 358.0, noise_k=0.0)
        assert (bank.sample(0).temperatures == model.temperatures()).all()

    def test_negative_noise_rejected_in_config(self):
        with pytest.raises(ConfigError):
            ThermalConfig(sensor_noise_k=-0.1)


class TestDefenseUnderNoise:
    def test_sedation_still_defends_with_noisy_sensors(self):
        clean = run_workloads(CFG.with_policy("sedation"), ["gzip", "variant2"])
        dirty = run_workloads(
            noisy(CFG, 0.25).with_policy("sedation"), ["gzip", "variant2"]
        )
        # The victim's outcome is in the same ballpark with realistic noise.
        assert dirty.threads[0].ipc > 0.85 * clean.threads[0].ipc

    def test_noise_does_not_sedate_the_victim(self):
        from repro.sim import Simulator

        sim = Simulator(
            noisy(CFG, 0.25).with_policy("sedation"),
            workloads=["gzip", "variant2"],
        )
        sim.run()
        counts = sim.reports.sedation_counts_by_thread()
        assert counts.get(0, 0) <= counts.get(1, 0)

    def test_heavy_noise_inflates_emergency_count_only_modestly(self):
        clean = run_workloads(CFG.with_policy("stop_and_go"), ["gzip", "variant2"])
        dirty = run_workloads(
            noisy(CFG, 0.25).with_policy("stop_and_go"), ["gzip", "variant2"]
        )
        assert dirty.emergencies <= 3 * max(4, clean.emergencies)
