"""Simulator and experiment-harness tests."""

import dataclasses

import pytest

from repro.blocks import INT_RF
from repro.config import scaled_config
from repro.errors import SimulationError
from repro.sim import ExperimentRunner, RunResult, Simulator, run_workloads

CFG = scaled_config(quantum_cycles=20_000)


class TestSimulatorConstruction:
    def test_requires_workloads_or_sources(self):
        with pytest.raises(SimulationError):
            Simulator(CFG)

    def test_workload_count_must_match_threads(self):
        with pytest.raises(SimulationError):
            Simulator(CFG, workloads=["gzip"])

    def test_unknown_policy_rejected_at_build(self):
        config = dataclasses.replace(CFG, dtm_policy="stop_and_go")
        sim = Simulator(config, workloads=["gzip", "eon"])
        assert sim.policy.name == "stop_and_go"

    def test_policy_selection(self):
        for policy in ("ideal", "stop_and_go", "dvfs", "sedation"):
            sim = Simulator(CFG.with_policy(policy), workloads=["gzip", "eon"])
            assert sim.policy.name == policy


class TestRunLoop:
    def test_run_produces_consistent_cycle_accounting(self):
        result = run_workloads(CFG.with_policy("stop_and_go"), ["gzip", "variant2"])
        for stats in result.threads:
            total = stats.cycles_normal + stats.cycles_cooling + stats.cycles_sedated
            assert total == result.cycles
            assert stats.normal_fraction + stats.cooling_fraction + \
                stats.sedated_fraction == pytest.approx(1.0)

    def test_cooling_classification_shared_by_all_threads(self):
        result = run_workloads(CFG.with_policy("stop_and_go"), ["gzip", "variant2"])
        assert result.threads[0].cycles_cooling == result.threads[1].cycles_cooling

    def test_quantum_override(self):
        sim = Simulator(CFG, workloads=["gzip", "eon"])
        result = sim.run(quantum_cycles=5_000)
        assert result.cycles == 5_000

    def test_zero_quantum_rejected(self):
        sim = Simulator(CFG, workloads=["gzip", "eon"])
        with pytest.raises(SimulationError):
            sim.run(quantum_cycles=0)

    def test_trace_recording(self):
        sim = Simulator(CFG, workloads=["gzip", "eon"])
        result = sim.run(quantum_cycles=5_000, trace=True)
        assert len(result.trace) > 10
        cycles = [row[0] for row in result.trace]
        assert cycles == sorted(cycles)

    def test_determinism(self):
        a = run_workloads(CFG.with_policy("stop_and_go"), ["gzip", "variant2"])
        b = run_workloads(CFG.with_policy("stop_and_go"), ["gzip", "variant2"])
        assert a.threads[0].committed == b.threads[0].committed
        assert a.emergencies == b.emergencies

    def test_seed_changes_synthetic_outcome(self):
        a = run_workloads(CFG, ["gzip", "eon"])
        b = run_workloads(dataclasses.replace(CFG, seed=99), ["gzip", "eon"])
        assert a.threads[0].committed != b.threads[0].committed

    def test_ideal_sink_never_stalls(self):
        result = run_workloads(CFG.with_ideal_sink(), ["gzip", "variant2"])
        assert result.emergencies == 0
        assert result.threads[0].cooling_fraction == 0.0

    def test_dvfs_policy_runs(self):
        result = run_workloads(CFG.with_policy("dvfs"), ["gzip", "variant2"])
        assert result.policy == "dvfs"
        assert result.threads[0].committed > 0

    def test_consecutive_runs_continue(self):
        sim = Simulator(CFG, workloads=["gzip", "eon"])
        first = sim.run(quantum_cycles=3_000)
        second = sim.run(quantum_cycles=3_000)
        assert second.cycles == 3_000
        assert sim.core.cycle == 6_000


class TestRunResult:
    def test_summary_mentions_workloads(self):
        result = run_workloads(CFG, ["gzip", "variant2"])
        text = result.summary()
        assert "gzip" in text and "variant2" in text

    def test_access_rate_uses_flat_average(self):
        result = run_workloads(CFG, ["gzip", "eon"])
        stats = result.threads[0]
        assert stats.access_rate(INT_RF) == pytest.approx(
            stats.access_counts[INT_RF] / stats.cycles
        )

    def test_total_ipc(self):
        result = run_workloads(CFG, ["gzip", "eon"])
        assert result.total_ipc == pytest.approx(
            result.threads[0].ipc + result.threads[1].ipc
        )

    def test_emergencies_at(self):
        result = run_workloads(CFG.with_policy("stop_and_go"), ["gzip", "variant2"])
        assert result.emergencies_at(INT_RF) <= result.emergencies


class TestExperimentRunner:
    def test_solo_uses_idle_companion(self):
        runner = ExperimentRunner(CFG)
        result = runner.solo("gzip")
        assert result.threads[1].committed == 0
        assert result.threads[0].committed > 0

    def test_results_memoized_by_label(self):
        runner = ExperimentRunner(CFG)
        first = runner.solo("gzip")
        second = runner.solo("gzip")
        assert first is second

    def test_pair_places_victim_on_thread_zero(self):
        runner = ExperimentRunner(CFG)
        result = runner.pair("gzip", "variant2")
        assert result.workloads == ("gzip", "variant2")

    def test_distinct_configs_not_conflated(self):
        runner = ExperimentRunner(CFG)
        a = runner.pair("gzip", "variant2", policy="stop_and_go")
        b = runner.pair("gzip", "variant2", policy="sedation")
        assert a is not b

    def test_sweep(self):
        runner = ExperimentRunner(CFG)
        results = runner.sweep(
            [("one", ["gzip", "eon"], CFG), ("two", ["gzip", "mcf"], CFG)]
        )
        assert set(results) >= {"one", "two"}
