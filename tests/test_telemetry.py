"""Telemetry: events, ring buffer, JSONL, narratives, and exactness.

The pinned-sequence tests lock the canonical heat-stroke narrative
(gzip + variant2 under selective sedation at time_scale=8000) so the
attack → sedate → release story is a regression-checked property of the
event log, not just a docstring claim.
"""

import json

import pytest

from repro.analysis import (
    duty_cycle,
    duty_cycle_from_events,
    strip_chart_from_events,
)
from repro.blocks import INT_RF
from repro.cli import main
from repro.config import scaled_config
from repro.errors import SimulationError
from repro.sim import run_workloads
from repro.sim.parallel import RunSpec, run_many, spec_fingerprint
from repro.sim.results import load_result, save_result
from repro.telemetry import (
    NARRATIVE_TYPES,
    Event,
    EventBus,
    EventType,
    TelemetrySession,
    batch_narrative,
    filter_events,
    load_events,
    sedation_episodes,
    stall_episodes,
    summarize,
    trace_row,
    trace_rows,
    write_events,
)

CFG = scaled_config(time_scale=8000.0, quantum_cycles=8_000)
WORKLOADS = ["gzip", "variant2"]


@pytest.fixture(scope="module")
def canonical():
    """The canonical heat-stroke run: attacker vs gzip under sedation."""
    session = TelemetrySession()
    result = run_workloads(
        CFG.with_policy("sedation"), WORKLOADS, trace=True, telemetry=session
    )
    return session, result


@pytest.fixture(scope="module")
def stopgo():
    session = TelemetrySession()
    result = run_workloads(
        CFG.with_policy("stop_and_go"), WORKLOADS, telemetry=session
    )
    return session, result


class TestEvent:
    def test_round_trip_full(self):
        event = Event(12, EventType.SEDATE, thread=1, block=INT_RF,
                      value=356.5, data={"ewma": 9.5})
        assert Event.from_dict(event.to_dict()) == event

    def test_dict_is_sparse(self):
        payload = Event(5, EventType.IDLE_SKIP, value=40.0).to_dict()
        assert set(payload) == {"cycle", "type", "value"}

    def test_trace_row_adapter(self):
        sample = Event(100, EventType.SENSOR_SAMPLE, value=356.0,
                       data={"int_rf_k": 355.5})
        assert trace_row(sample) == (100, 356.0, 355.5)
        with pytest.raises(SimulationError):
            trace_row(Event(0, EventType.SEDATE))


class TestRingBuffer:
    def test_truncation_keeps_latest_and_counts_drops(self):
        bus = EventBus(capacity=4)
        for cycle in range(10):
            bus.emit(Event(cycle, EventType.SENSOR_SAMPLE, value=0.0))
        assert bus.emitted == 10
        assert bus.dropped == 6
        assert [e.cycle for e in bus.events()] == [6, 7, 8, 9]

    def test_unbounded_when_capacity_none(self):
        bus = EventBus(capacity=None)
        for cycle in range(100):
            bus.emit(Event(cycle, EventType.SENSOR_SAMPLE, value=0.0))
        assert bus.dropped == 0 and len(bus) == 100

    def test_bad_capacity_rejected(self):
        with pytest.raises(SimulationError):
            EventBus(capacity=0)

    def test_sink_sees_events_the_ring_dropped(self):
        seen = []
        bus = EventBus(capacity=2)
        bus.add_sink(seen.append)
        for cycle in range(5):
            bus.emit(Event(cycle, EventType.SENSOR_SAMPLE, value=0.0))
        assert len(seen) == 5 and len(bus.events()) == 2

    def test_metrics_survive_ring_truncation(self):
        session = TelemetrySession(capacity=2)
        session.emit(EventType.SEDATE, 100, thread=1, block=INT_RF)
        for cycle in range(110, 150, 10):
            session.emit(EventType.SENSOR_SAMPLE, cycle, value=355.0)
        session.emit(EventType.RELEASE, 300, thread=1, block=INT_RF)
        # The SEDATE event is long gone from the ring...
        assert all(e.type is not EventType.SEDATE for e in session.events())
        # ...but the episode histogram was derived at emit time.
        snap = session.snapshot()
        assert snap["histograms"]["sedation_cycles"]["total"] == 200
        assert snap["events"]["dropped"] > 0


class TestJsonlRoundTrip:
    def test_write_read_equality(self, canonical, tmp_path):
        session, _ = canonical
        path = tmp_path / "events.jsonl"
        count = write_events(session.events(), path)
        assert count == len(session.events())
        assert load_events(path) == session.events()

    def test_streaming_sink_equals_ring(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        session = TelemetrySession(jsonl_path=path)
        run_workloads(CFG.with_policy("sedation"), WORKLOADS,
                      telemetry=session)
        session.close()
        assert load_events(path) == session.events()

    def test_corrupt_line_is_a_loud_error(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"cycle": 1, "type": "sensor_sample"}\nnot json\n')
        with pytest.raises(SimulationError, match="bad.jsonl:2"):
            load_events(path)


class TestCanonicalNarrative:
    """Pinned regression for the attack → sedate → release sequence."""

    def test_event_ordering(self, canonical):
        session, _ = canonical
        events = session.events()
        for episode in sedation_episodes(events):
            assert episode["release_cycle"] is not None
            assert episode["sedate_cycle"] < episode["release_cycle"]
        # Every sedation is preceded by an upper-threshold rise at the
        # same cycle: the controller reacts to the crossing it observed.
        sedate_at = [
            i for i, e in enumerate(events) if e.type is EventType.SEDATE
        ]
        rise_at = [
            i for i, e in enumerate(events)
            if e.type is EventType.THRESHOLD_CROSS
            and (e.data or {}).get("threshold") == "upper"
            and (e.data or {}).get("direction") == "rise"
        ]
        assert len(rise_at) == len(sedate_at)
        for rise, sedate in zip(rise_at, sedate_at, strict=True):
            assert rise < sedate
            assert events[rise].cycle == events[sedate].cycle

    def test_pinned_sequence(self, canonical):
        """The canonical run's narrative, cycle for cycle.

        These numbers are a determinism contract: the simulation is a pure
        function of its config, so any drift here means the physics or the
        controller changed, not the telemetry.
        """
        session, result = canonical
        events = session.events()
        story = [e for e in events if e.type in NARRATIVE_TYPES]
        assert [e.type for e in story[:4]] == [
            EventType.THRESHOLD_CROSS,
            EventType.SEDATE,
            EventType.THRESHOLD_CROSS,
            EventType.RELEASE,
        ]
        assert story[0].cycle == 1740 and story[1].cycle == 1740
        assert story[3].cycle == 1944
        episodes = sedation_episodes(events)
        assert len(episodes) == 7 == result.sedations
        assert all(e["thread"] == 1 and e["block"] == INT_RF
                   for e in episodes)
        assert [e["sedate_cycle"] for e in episodes] == [
            1740, 2544, 3564, 4476, 5436, 6396, 7320,
        ]

    def test_sedation_targets_the_attacker(self, canonical):
        session, _ = canonical
        for event in session.events():
            if event.type is EventType.SEDATE:
                assert event.thread == 1  # variant2, the flooding thread
                assert (event.data or {}).get("ewma", 0) > 0

    def test_summary_reconstructs_story_from_log_alone(
        self, canonical, tmp_path
    ):
        session, _ = canonical
        path = tmp_path / "log.jsonl"
        write_events(session.events(), path)
        report = summarize(load_events(path))
        assert "sedation episodes:" in report
        assert "thread 1 at int_rf" in report
        assert "upper rise" in report and "release" in report

    def test_summary_batch_section(self, canonical):
        session, _ = canonical
        counters = {
            "runner.batch_groups": 2,
            "runner.batch_lanes": 12,
            "runner.batch_completed": 12,
            "runner.batch_deferred": 0,
            "runner.batch_cohorts": 5,
            "runner.batch_splits": 3,
        }
        report = summarize(session.events(), batch_counters=counters)
        assert "batch execution:" in report
        assert "12 lanes in 2 lock-step groups -> 5 cohorts" in report
        assert "(3 divergence splits)" in report
        assert "retention 100%: 12 lanes completed in-batch" in report
        # No batch activity (or no counters at all): section omitted.
        assert "batch execution:" not in summarize(session.events())
        assert batch_narrative({}) == []


class TestMetricsSnapshot:
    def test_gauges_match_thread_stats(self, canonical):
        session, result = canonical
        snap = result.telemetry
        assert snap == session.snapshot()
        for stats in result.threads:
            key = f"duty_cycle.t{stats.thread}"
            assert snap["gauges"][key] == pytest.approx(
                stats.normal_fraction
            )
            assert snap["gauges"][f"sedated_fraction.t{stats.thread}"] == (
                pytest.approx(stats.sedated_fraction)
            )
        assert snap["gauges"]["peak_temperature_k"] == (
            result.peak_temperature_k
        )

    def test_sedation_histogram_counts_episodes(self, canonical):
        session, result = canonical
        hist = result.telemetry["histograms"]["sedation_cycles"]
        assert hist["count"] == result.sedations
        assert hist["min"] > 0

    def test_stall_metrics_on_stop_and_go(self, stopgo):
        session, result = stopgo
        episodes = stall_episodes(session.events())
        assert len(episodes) == result.stall_engagements
        counters = result.telemetry["counters"]
        assert counters["events.stopgo_engage"] == result.stall_engagements


class TestExactness:
    """Telemetry is observation, never perturbation."""

    def test_instrumented_run_equals_plain_run(self, canonical):
        _, instrumented = canonical
        plain = run_workloads(
            CFG.with_policy("sedation"), WORKLOADS, trace=True
        )
        assert plain == instrumented  # telemetry excluded from equality
        assert plain.trace == instrumented.trace
        assert plain.telemetry is None
        assert instrumented.telemetry is not None


class TestResultSerialization:
    def test_telemetry_survives_save_load(self, canonical, tmp_path):
        _, result = canonical
        path = tmp_path / "result.json"
        save_result(result, path)
        loaded = load_result(path)
        assert loaded.telemetry == result.telemetry
        assert loaded == result

    def test_pre_telemetry_payloads_still_load(self, canonical, tmp_path):
        from repro.sim.results import result_from_dict, result_to_dict

        _, result = canonical
        payload = result_to_dict(result)
        del payload["telemetry"]
        assert result_from_dict(payload).telemetry is None


class TestParallelCache:
    def test_fingerprint_distinguishes_telemetry(self):
        spec = RunSpec(tuple(WORKLOADS), CFG.with_policy("sedation"))
        instrumented = RunSpec(
            tuple(WORKLOADS), CFG.with_policy("sedation"), telemetry=True
        )
        assert spec_fingerprint(spec) != spec_fingerprint(instrumented)

    def test_cached_run_keeps_telemetry(self, tmp_path):
        cfg = scaled_config(
            time_scale=20_000.0, quantum_cycles=6_000
        ).with_policy("sedation")
        spec = RunSpec(tuple(WORKLOADS), cfg, telemetry=True)
        fresh = run_many([spec], jobs=1, cache_dir=tmp_path)[0]
        assert fresh.telemetry is not None
        cached = run_many([spec], jobs=1, cache_dir=tmp_path)[0]
        assert cached == fresh
        assert cached.telemetry == fresh.telemetry


class TestAnalysisPorts:
    def test_duty_cycle_from_events_matches_result(self, stopgo):
        session, result = stopgo
        assert duty_cycle_from_events(
            session.events(), result.cycles
        ) == pytest.approx(duty_cycle(result, 1))

    def test_strip_chart_from_events(self, canonical):
        session, _ = canonical
        chart = strip_chart_from_events(session.events(), width=40)
        assert "*" in chart and "K" in chart

    def test_strip_chart_rejects_sample_free_log(self, canonical):
        session, _ = canonical
        narrative_only = filter_events(
            session.events(), types=NARRATIVE_TYPES
        )
        with pytest.raises(SimulationError):
            strip_chart_from_events(narrative_only)

    def test_filter_events_window(self, canonical):
        session, _ = canonical
        window = filter_events(
            session.events(), types={EventType.SEDATE},
            since=2000, until=5000,
        )
        assert [e.cycle for e in window] == [2544, 3564, 4476]


class TestCLI:
    def test_run_events_then_summary(self, capsys, tmp_path):
        log = tmp_path / "ev.jsonl"
        code = main([
            "run", "gzip", "variant2",
            "--time-scale", "8000", "--quantum", "8000",
            "--policy", "sedation", "--events", str(log),
        ])
        assert code == 0
        assert "emitted" in capsys.readouterr().out
        assert main(["events", str(log), "--summary"]) == 0
        out = capsys.readouterr().out
        assert "sedation episodes:" in out
        assert "narrative:" in out
        assert "sedate" in out and "release" in out

    def test_events_filters(self, capsys, tmp_path):
        log = tmp_path / "ev.jsonl"
        main([
            "run", "gzip", "variant2",
            "--time-scale", "8000", "--quantum", "8000",
            "--policy", "sedation", "--events", str(log),
        ])
        capsys.readouterr()
        assert main([
            "events", str(log), "--type", "sedate", "--limit", "2",
        ]) == 0
        out = capsys.readouterr().out
        lines = [line for line in out.splitlines() if "sedate" in line]
        assert len(lines) == 2
        assert "more (raise --limit)" in out

    def test_trace_from_events_and_result(self, capsys, tmp_path):
        log = tmp_path / "ev.jsonl"
        result_path = tmp_path / "res.json"
        main([
            "run", "gzip", "variant2",
            "--time-scale", "8000", "--quantum", "8000",
            "--policy", "sedation",
            "--events", str(log), "--output", str(result_path),
        ])
        capsys.readouterr()
        assert main(["trace", "--events", str(log)]) == 0
        from_events = capsys.readouterr().out
        assert main(["trace", str(result_path)]) == 0
        from_result = capsys.readouterr().out
        assert from_events == from_result
        assert main(["trace", str(result_path), "--csv"]) == 0
        assert capsys.readouterr().out.startswith("cycle,hottest_k,int_rf_k")

    def test_trace_requires_a_source(self, capsys):
        assert main(["trace"]) == 1
        assert "error" in capsys.readouterr().err

    def test_run_telemetry_flag_prints_snapshot(self, capsys):
        code = main([
            "run", "gzip", "eon",
            "--time-scale", "8000", "--quantum", "4000", "--telemetry",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert '"counters"' in out and '"gauges"' in out
