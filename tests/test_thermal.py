"""Thermal model tests: floorplan, package, RC network, sensors."""

import numpy as np
import pytest

from repro.blocks import DCACHE, INT_RF, NUM_BLOCKS
from repro.config import ThermalConfig
from repro.errors import ThermalError
from repro.power import EnergyModel
from repro.thermal import (
    CalibrationAnchors,
    Floorplan,
    Package,
    RCThermalModel,
    SensorBank,
)


def make_model(**thermal_kwargs) -> RCThermalModel:
    return RCThermalModel(ThermalConfig(**thermal_kwargs))


def leakage_powers(model: RCThermalModel) -> list[float]:
    return list(model.energy.leakage_w)


class TestFloorplan:
    def test_default_covers_all_blocks(self):
        plan = Floorplan()
        assert len(plan) == NUM_BLOCKS

    def test_register_file_is_small(self):
        """The RF must be among the smallest blocks — that is why it is the
        attack's natural hot spot."""
        plan = Floorplan()
        rf_area = plan.blocks[INT_RF].area_mm2
        assert rf_area <= min(block.area_mm2 for block in plan)

    def test_override_area(self):
        plan = Floorplan({"int_rf": 2.5})
        assert plan.block("int_rf").area_mm2 == pytest.approx(2.5)

    def test_unknown_block_rejected(self):
        with pytest.raises(ThermalError):
            Floorplan({"nonexistent": 1.0})

    def test_negative_area_rejected(self):
        with pytest.raises(ThermalError):
            Floorplan({"int_rf": -1.0})

    def test_total_area(self):
        plan = Floorplan()
        assert plan.total_area_mm2 == pytest.approx(sum(plan.areas))


class TestPackage:
    def test_from_config(self):
        package = Package.from_config(ThermalConfig())
        assert package.convection_resistance_k_per_w == pytest.approx(0.8)
        assert package.ideal is False

    def test_sink_capacitance(self):
        package = Package(0.5, 318.0, sink_time_constant_s=5.0)
        assert package.sink_capacitance_j_per_k == pytest.approx(10.0)

    def test_rejects_nonpositive_resistance(self):
        with pytest.raises(ThermalError):
            Package(0.0, 318.0)


class TestCalibration:
    def test_rate_slope_matches_anchors(self):
        """Sustained RF temperature difference between the anchor rates must
        equal emergency - normal_operating."""
        model = make_model()
        anchors = model.anchors
        watts_per_rate = model.energy.energy_j[INT_RF] * model.config.frequency_hz
        t_low = model.steady_state_block_temperature(
            INT_RF, anchors.rf_normal_rate * watts_per_rate, model.nominal_sink_k
        )
        t_high = model.steady_state_block_temperature(
            INT_RF, anchors.rf_emergency_rate * watts_per_rate, model.nominal_sink_k
        )
        assert t_high - t_low == pytest.approx(
            model.config.emergency_k - model.config.normal_operating_k
        )

    def test_smaller_blocks_run_hotter(self):
        """Equal power into a smaller block yields a higher steady temp."""
        model = make_model()
        t_rf = model.steady_state_block_temperature(INT_RF, 2.0)
        t_dcache = model.steady_state_block_temperature(DCACHE, 2.0)
        assert t_rf > t_dcache

    def test_time_constants_are_area_independent(self):
        model = make_model()
        tau_block = model.r1 * model.c_block
        assert np.allclose(tau_block, model.config.block_time_constant_s)
        tau_deep = model.r3 * model.c_deep
        assert np.allclose(tau_deep, model.config.spreader_time_constant_s)

    def test_warm_start_near_normal_operating(self):
        """The RF warm-starts close to (below) the emergency point and near
        the normal operating neighborhood."""
        model = make_model()
        t_rf = model.block_temperature(INT_RF)
        assert 350.0 < t_rf < model.config.emergency_k

    def test_invalid_layer_shares_rejected(self):
        with pytest.raises(ThermalError):
            CalibrationAnchors(layer_shares=(0.5, 0.5, 0.5))
        with pytest.raises(ThermalError):
            CalibrationAnchors(layer_shares=(1.0, 0.0, 0.0))

    def test_degenerate_anchor_slope_rejected(self):
        with pytest.raises(ThermalError):
            RCThermalModel(
                ThermalConfig(),
                anchors=CalibrationAnchors(
                    rf_emergency_rate=3.0, rf_normal_rate=3.0
                ),
            )


class TestDynamics:
    def test_leakage_only_is_steady_state_when_cold_started(self):
        model = make_model()
        # Force the leakage-only fixed point, then integrate: nothing moves.
        leak = np.asarray(leakage_powers(model))
        model.t_deep[:] = model.t_sink + leak * model.r3
        model.t_local[:] = model.t_deep + leak * model.r2
        model.t_block[:] = model.t_local + leak * model.r1
        before = model.temperatures()
        model.advance(0.01, leakage_powers(model))
        assert np.allclose(model.temperatures(), before, atol=0.2)

    def test_heating_under_high_power(self):
        model = make_model()
        before = model.block_temperature(INT_RF)
        powers = leakage_powers(model)
        powers[INT_RF] += 4.0
        model.advance(5e-3, powers)
        assert model.block_temperature(INT_RF) > before + 1.0

    def test_cooling_toward_idle_under_leakage(self):
        model = make_model()
        powers = leakage_powers(model)
        powers[INT_RF] += 4.0
        model.advance(10e-3, powers)
        hot = model.block_temperature(INT_RF)
        model.advance(50e-3, leakage_powers(model))
        assert model.block_temperature(INT_RF) < hot - 2.0

    def test_heat_stroke_limit_cycle(self):
        """The heat-stroke precondition: under burst power the register file
        reaches the emergency point within a few milliseconds from the
        resume point, over and over — the stop-and-go heat/cool limit cycle
        never converges to safety (the attack re-melts indefinitely)."""
        config = ThermalConfig()
        model = RCThermalModel(config)
        burst = leakage_powers(model)
        burst[INT_RF] += 5.0  # ~12 accesses/cycle
        dt = 25e-6
        heat_times = []
        for _ in range(4):
            heat = 0.0
            while model.block_temperature(INT_RF) < config.emergency_k:
                model.advance(dt, burst)
                heat += dt
                assert heat < 0.1, "never reached emergency"
            heat_times.append(heat)
            cool = 0.0
            while model.block_temperature(INT_RF) > config.normal_operating_k:
                model.advance(dt, leakage_powers(model))
                cool += dt
                assert cool < 1.0, "never cooled"
        # Re-heating stays fast (the warm neighborhood makes later melts at
        # least as fast as the first), so the emergencies recur.
        assert heat_times[-1] <= heat_times[0] * 1.5
        assert heat_times[-1] < 5e-3

    def test_steady_state_matches_analytic(self):
        model = make_model()
        powers = leakage_powers(model)
        powers[INT_RF] += 2.0
        for _ in range(200):
            model.advance(2e-3, powers)
        analytic = model.steady_state_block_temperature(
            INT_RF, powers[INT_RF], model.t_sink
        )
        assert model.block_temperature(INT_RF) == pytest.approx(analytic, abs=0.5)

    def test_monotonic_in_power(self):
        temps = []
        for extra in (0.0, 1.0, 2.0, 4.0):
            model = make_model()
            powers = leakage_powers(model)
            powers[INT_RF] += extra
            model.advance(20e-3, powers)
            temps.append(model.block_temperature(INT_RF))
        assert temps == sorted(temps)

    def test_negative_dt_rejected(self):
        model = make_model()
        with pytest.raises(ThermalError):
            model.advance(-1.0, leakage_powers(model))

    def test_wrong_power_vector_length_rejected(self):
        model = make_model()
        with pytest.raises(ThermalError):
            model.advance(1e-3, [1.0, 2.0])

    def test_zero_dt_is_noop(self):
        model = make_model()
        before = model.temperatures()
        model.advance(0.0, leakage_powers(model))
        assert np.array_equal(model.temperatures(), before)


class TestIdealSink:
    def test_temperatures_pinned(self):
        model = make_model(ideal_sink=True)
        powers = leakage_powers(model)
        powers[INT_RF] += 100.0
        model.advance(1.0, powers)
        assert np.allclose(
            model.temperatures(), model.config.normal_operating_k
        )


class TestHeatSinkSweep:
    def test_better_sink_lowers_all_temperatures(self):
        """§5.5: convection resistance shifts the package operating point."""
        temps = []
        for r_conv in (0.65, 0.8, 0.95):
            model = make_model(convection_resistance_k_per_w=r_conv)
            temps.append(model.block_temperature(INT_RF))
        assert temps == sorted(temps)

    def test_die_network_is_sink_independent(self):
        """The slope calibration must not silently re-tune the die when the
        package changes (DESIGN.md §5.5 requirement)."""
        base = make_model(convection_resistance_k_per_w=0.8)
        better = make_model(convection_resistance_k_per_w=0.65)
        assert np.allclose(base.r1, better.r1)
        assert np.allclose(base.r3, better.r3)


class TestSensors:
    def test_emergency_crossing_counted_once_per_excursion(self):
        model = make_model()
        bank = SensorBank(model, emergency_k=model.config.emergency_k)
        burst = leakage_powers(model)
        burst[INT_RF] += 6.0
        # Heat past emergency: exactly one upward crossing.
        for cycle in range(400):
            model.advance(1e-4, burst)
            bank.sample(cycle)
        assert bank.total_emergencies == 1
        # Cool below, heat again: second crossing.
        for cycle in range(400, 3000):
            model.advance(1e-4, leakage_powers(model))
            bank.sample(cycle)
            if model.block_temperature(INT_RF) < 353.0:
                break
        for cycle in range(3000, 3400):
            model.advance(1e-4, burst)
            bank.sample(cycle)
        assert bank.total_emergencies == 2
        assert bank.emergencies_per_block[INT_RF] == 2

    def test_peak_tracking(self):
        model = make_model()
        bank = SensorBank(model, emergency_k=358.0)
        burst = leakage_powers(model)
        burst[INT_RF] += 6.0
        for cycle in range(300):
            model.advance(1e-4, burst)
            bank.sample(cycle)
        assert bank.peak_k >= 358.0

    def test_blocks_at_or_above(self):
        model = make_model()
        bank = SensorBank(model, emergency_k=358.0)
        hot = bank.blocks_at_or_above(0.0)
        assert len(hot) == NUM_BLOCKS
        assert bank.blocks_at_or_above(1000.0) == []

    def test_summary_names_blocks(self):
        model = make_model()
        bank = SensorBank(model, emergency_k=0.0)  # everything "hot"
        bank._above_emergency = [False] * NUM_BLOCKS
        bank.sample(0)
        assert "int_rf" in bank.summary()

    def test_reading_reports_hottest(self):
        model = make_model()
        bank = SensorBank(model, emergency_k=358.0)
        reading = bank.sample(0)
        assert reading.hottest_k == pytest.approx(
            float(np.max(reading.temperatures))
        )
