"""Property-based thermal-model tests (hypothesis)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.blocks import NUM_BLOCKS
from repro.config import ThermalConfig
from repro.thermal import RCThermalModel

powers_strategy = st.lists(
    st.floats(min_value=0.0, max_value=8.0, allow_nan=False),
    min_size=NUM_BLOCKS,
    max_size=NUM_BLOCKS,
)


def fresh_model():
    return RCThermalModel(ThermalConfig())


@given(powers_strategy, st.floats(min_value=1e-5, max_value=5e-3))
@settings(max_examples=30, deadline=None)
def test_temperatures_stay_finite_and_above_ambient(powers, dt):
    model = fresh_model()
    for _ in range(5):
        model.advance(dt, powers)
    temps = model.temperatures()
    assert np.all(np.isfinite(temps))
    assert np.all(temps > model.config.ambient_k)


@given(powers_strategy)
@settings(max_examples=30, deadline=None)
def test_more_power_never_cools(powers):
    """Pointwise monotonicity: adding power to one block cannot lower its
    temperature over the same horizon."""
    low = fresh_model()
    high = fresh_model()
    boosted = list(powers)
    boosted[0] += 2.0
    for _ in range(20):
        low.advance(1e-3, powers)
        high.advance(1e-3, boosted)
    assert high.block_temperature(0) > low.block_temperature(0)


@given(powers_strategy, st.integers(min_value=1, max_value=6))
@settings(max_examples=30, deadline=None)
def test_integration_is_step_size_insensitive(powers, splits):
    """Advancing by dt once vs. in n equal chunks lands within tolerance
    (substepping keeps forward Euler well-behaved)."""
    total_dt = 2e-3
    whole = fresh_model()
    whole.advance(total_dt, powers)
    chunked = fresh_model()
    for _ in range(splits):
        chunked.advance(total_dt / splits, powers)
    assert np.allclose(whole.temperatures(), chunked.temperatures(), atol=0.05)


@given(powers_strategy)
@settings(max_examples=30, deadline=None)
def test_bounded_by_steady_state(powers):
    """No block overshoots its own steady-state temperature under constant
    power (the network is a passive RC: monotone approach, no ringing)."""
    model = fresh_model()
    start = model.temperatures()
    for _ in range(50):
        model.advance(2e-3, powers)
    temps = model.temperatures()
    for block in range(NUM_BLOCKS):
        steady = model.steady_state_block_temperature(
            block, powers[block], model.t_sink
        )
        upper = max(start[block], steady) + 0.6
        assert temps[block] <= upper


@given(st.floats(min_value=0.55, max_value=0.9))
@settings(max_examples=20, deadline=None)
def test_sink_temperature_monotone_in_convection_resistance(r_conv):
    """A worse sink always runs hotter.  (Sinks bad enough to push the
    nominal package past the emergency point are rejected at construction —
    a separate guard tested in test_thermal.py.)"""
    better = RCThermalModel(ThermalConfig(convection_resistance_k_per_w=r_conv))
    worse = RCThermalModel(
        ThermalConfig(convection_resistance_k_per_w=r_conv + 0.05)
    )
    assert worse.nominal_sink_k > better.nominal_sink_k
