"""Trace-analysis utility tests."""

import pytest

from repro.analysis.trace import excursions_above, strip_chart, trace_to_csv
from repro.config import scaled_config
from repro.errors import SimulationError
from repro.sim import Simulator

CFG = scaled_config(time_scale=8000.0, quantum_cycles=10_000)


@pytest.fixture(scope="module")
def trace():
    sim = Simulator(CFG.with_policy("stop_and_go"), workloads=["gzip", "variant2"])
    return sim.run(trace=True).trace


class TestStripChart:
    def test_renders_requested_geometry(self, trace):
        chart = strip_chart(trace, emergency_k=358.0, normal_k=354.0, width=40, rows=10)
        lines = chart.splitlines()
        assert len(lines) == 10
        assert all("K" in line for line in lines)
        assert "*" in chart

    def test_reference_markers(self, trace):
        chart = strip_chart(trace, emergency_k=358.0, normal_k=354.0)
        # Markers appear when the temperature range covers them.
        assert "E|" in chart or "N|" in chart or "|" in chart

    def test_empty_trace_rejected(self):
        with pytest.raises(SimulationError):
            strip_chart([])

    def test_bad_column_rejected(self, trace):
        with pytest.raises(SimulationError):
            strip_chart(trace, column=5)


class TestCsv:
    def test_header_and_rows(self, trace):
        csv = trace_to_csv(trace)
        lines = csv.strip().splitlines()
        assert lines[0] == "cycle,hottest_k,int_rf_k"
        assert len(lines) == len(trace) + 1
        first = lines[1].split(",")
        assert int(first[0]) == trace[0][0]


class TestExcursions:
    def test_synthetic_spans(self):
        trace = [
            (0, 350.0, 350.0),
            (10, 357.0, 357.0),
            (20, 358.5, 358.5),
            (30, 358.2, 358.2),
            (40, 353.0, 353.0),
            (50, 358.6, 358.6),
        ]
        spans = excursions_above(trace, 358.0)
        assert spans == [(20, 40), (50, 50)]

    def test_no_excursions(self):
        trace = [(0, 350.0, 350.0), (10, 351.0, 351.0)]
        assert excursions_above(trace, 358.0) == []

    def test_real_trace_has_emergency_excursions(self, trace):
        spans = excursions_above(trace, 357.9, column=1)
        assert len(spans) >= 1

    def test_bad_column_rejected(self):
        with pytest.raises(SimulationError):
            excursions_above([(0, 1.0, 1.0)], 0.5, column=0)
