"""Lightweight unit tests: Uop tables, ThreadStats math, summaries."""

import pytest

from repro.blocks import INT_RF
from repro.pipeline.uop import (
    ISA_CLASS_CODE,
    NUM_OPCLASSES,
    OP_BRANCH,
    OP_LOAD,
    OP_STORE,
    OPCLASS_LATENCY,
    OPCLASS_NAMES,
    Uop,
)
from repro.isa.instructions import OpClass
from repro.sim.stats import RunResult, ThreadStats


class TestUopTables:
    def test_tables_cover_every_opclass(self):
        assert len(OPCLASS_NAMES) == NUM_OPCLASSES
        assert len(OPCLASS_LATENCY) == NUM_OPCLASSES

    def test_isa_enum_maps_onto_codes(self):
        for opclass in OpClass:
            assert opclass.value in ISA_CLASS_CODE

    def test_mem_flag(self):
        load = Uop(0, 0x100, OP_LOAD, dest=3, srcs=(5,), address=0x2000)
        store = Uop(0, 0x104, OP_STORE, srcs=(3, 5), address=0x2000)
        branch = Uop(0, 0x108, OP_BRANCH, srcs=(3,), taken=True)
        assert load.is_mem and store.is_mem
        assert not branch.is_mem

    def test_slots_prevent_arbitrary_attributes(self):
        uop = Uop(0, 0, OP_LOAD)
        with pytest.raises(AttributeError):
            uop.bogus = 1

    def test_default_latency_from_table(self):
        uop = Uop(0, 0, OP_BRANCH)
        assert uop.latency == OPCLASS_LATENCY[OP_BRANCH]

    def test_repr_mentions_opclass(self):
        assert "load" in repr(Uop(1, 0x40, OP_LOAD))


def make_stats(**overrides):
    base = {
        "thread": 0,
        "workload": "gzip",
        "committed": 500,
        "fetched": 520,
        "cycles": 1000,
        "cycles_normal": 700,
        "cycles_cooling": 200,
        "cycles_sedated": 100,
        "access_counts": tuple([42] + [0] * 12),
    }
    base.update(overrides)
    return ThreadStats(**base)


class TestThreadStats:
    def test_ipc(self):
        assert make_stats().ipc == pytest.approx(0.5)

    def test_fractions_sum_to_one(self):
        stats = make_stats()
        total = (
            stats.normal_fraction
            + stats.cooling_fraction
            + stats.sedated_fraction
        )
        assert total == pytest.approx(1.0)

    def test_access_rate_defaults_to_int_rf(self):
        stats = make_stats()
        assert stats.access_rate() == pytest.approx(42 / 1000)
        assert stats.access_rate(INT_RF) == stats.access_rate()

    def test_zero_cycles_safe(self):
        stats = make_stats(cycles=0, cycles_normal=0, cycles_cooling=0,
                           cycles_sedated=0)
        assert stats.ipc == 0.0
        assert stats.access_rate() == 0.0


class TestRunResult:
    def _result(self):
        threads = (make_stats(), make_stats(thread=1, workload="variant2"))
        return RunResult(
            workloads=("gzip", "variant2"),
            policy="sedation",
            cycles=1000,
            threads=threads,
            emergencies=3,
            emergencies_per_block=tuple([3] + [0] * 12),
            peak_temperature_k=358.2,
            sedations=5,
            safety_net_engagements=1,
            stall_engagements=2,
        )

    def test_summary_includes_key_numbers(self):
        text = self._result().summary()
        assert "sedation" in text
        assert "emergencies=3" in text
        assert "int_rf:3" in text
        assert "variant2" in text

    def test_total_ipc(self):
        assert self._result().total_ipc == pytest.approx(1.0)

    def test_thread_accessor(self):
        result = self._result()
        assert result.thread(1).workload == "variant2"
        assert result.ipc_of(0) == pytest.approx(0.5)
