"""Calibration envelopes: solo IPC and access-rate targets (DESIGN.md §7).

These tests check the *envelopes* the paper's figures depend on, not exact
values: SPEC access rates sit below the attack burst rates, the hot subset
sits near the top of the envelope, and IPCs span the expected range.
"""

import pytest

from repro.blocks import INT_RF
from repro.config import scaled_config
from repro.sim import ExperimentRunner
from repro.workloads import HOT_BENCHMARKS

#: Representative subset (full-roster envelopes are validated by the
#: Figure-3 benchmark).
SUBSET = ["gzip", "crafty", "eon", "gcc", "mcf", "applu", "swim", "ammp"]


@pytest.fixture(scope="module")
def solo_results():
    runner = ExperimentRunner(scaled_config(time_scale=4000.0, quantum_cycles=30_000))
    return {
        name: runner.solo(name, policy="ideal", ideal_sink=True) for name in SUBSET
    }


def test_spec_rates_below_attack_burst(solo_results):
    """Figure 3: every SPEC flat average sits below ~6 accesses/cycle."""
    for name, result in solo_results.items():
        assert result.threads[0].access_rate(INT_RF) < 6.5, name


def test_hot_benchmarks_top_the_envelope(solo_results):
    hot = [n for n in SUBSET if n in HOT_BENCHMARKS]
    cold = [n for n in SUBSET if n not in HOT_BENCHMARKS]
    hottest_cold = max(
        solo_results[n].threads[0].access_rate(INT_RF) for n in cold
    )
    for name in hot:
        assert (
            solo_results[name].threads[0].access_rate(INT_RF) > 0.75 * hottest_cold
        ), name


def test_ipc_range_spans_memory_bound_to_high_ilp(solo_results):
    ipcs = {n: r.threads[0].ipc for n, r in solo_results.items()}
    assert ipcs["mcf"] < 0.7  # memory bound
    assert ipcs["gzip"] > 1.4  # high ILP
    assert 0.7 < sum(ipcs.values()) / len(ipcs) < 1.9


def test_memory_bound_profiles_use_memory(solo_results):
    """mcf must actually miss in the L2, not just run slowly."""
    mcf = solo_results["mcf"].threads[0]
    gzip = solo_results["gzip"].threads[0]
    from repro.blocks import L2

    assert mcf.access_counts[L2] / max(1, mcf.committed) > (
        gzip.access_counts[L2] / max(1, gzip.committed)
    )


def test_fp_benchmarks_heat_fp_register_file(solo_results):
    from repro.blocks import FP_RF

    applu = solo_results["applu"].threads[0]
    gcc = solo_results["gcc"].threads[0]
    assert applu.access_rate(FP_RF) > 4 * max(0.01, gcc.access_rate(FP_RF))
