"""Workload tests: profiles, synthetic generator, malicious kernels, registry."""

import dataclasses

import pytest

from repro.blocks import INT_RF
from repro.config import MachineConfig, ThermalConfig
from repro.errors import WorkloadError
from repro.memory import Cache
from repro.pipeline.uop import OP_BRANCH, OP_LOAD, OP_STORE
from repro.workloads import (
    CONFLICT_WAYS,
    HOT_BENCHMARKS,
    MALICIOUS_VARIANTS,
    SPEC_PROFILES,
    SyntheticSource,
    build_variant,
    build_variant1,
    build_variant2,
    build_variant3,
    conflict_addresses,
    get_profile,
    is_malicious,
    make_source,
    workload_names,
)
from repro.workloads.program_source import ProgramSource, THREAD_REGION_BYTES

MACHINE = MachineConfig()
THERMAL = ThermalConfig()


class TestProfiles:
    def test_roster_is_complete(self):
        assert len(SPEC_PROFILES) == 22
        for name in HOT_BENCHMARKS:
            assert name in SPEC_PROFILES

    def test_mix_fractions_are_valid(self):
        for profile in SPEC_PROFILES.values():
            total = (
                profile.ialu + profile.imult + profile.falu + profile.fmult
                + profile.load + profile.store + profile.branch
            )
            assert 0 < total <= 1.0 + 1e-9, profile.name

    def test_get_profile_unknown(self):
        with pytest.raises(WorkloadError):
            get_profile("quake3")

    def test_invalid_mix_rejected(self):
        base = get_profile("gzip")
        with pytest.raises(WorkloadError):
            dataclasses.replace(base, load=0.9)

    def test_fp_profiles_marked(self):
        assert get_profile("swim").is_fp is True
        assert get_profile("gcc").is_fp is False

    def test_hot_benchmarks_have_bursts(self):
        for name in HOT_BENCHMARKS:
            assert get_profile(name).burst_every_instrs > 0


class TestSyntheticSource:
    def test_deterministic_given_seed(self):
        a = SyntheticSource(get_profile("gzip"), 0, seed=7)
        b = SyntheticSource(get_profile("gzip"), 0, seed=7)
        for _ in range(200):
            ua, ub = a.next_uop(), b.next_uop()
            assert (ua.opclass, ua.dest, ua.srcs, ua.address, ua.taken) == (
                ub.opclass, ub.dest, ub.srcs, ub.address, ub.taken
            )

    def test_different_seeds_differ(self):
        a = SyntheticSource(get_profile("gzip"), 0, seed=7)
        b = SyntheticSource(get_profile("gzip"), 0, seed=8)
        streams_equal = all(
            a.next_uop().opclass == b.next_uop().opclass for _ in range(100)
        )
        assert not streams_equal

    def test_mix_statistics_match_profile(self):
        profile = get_profile("gcc")
        source = SyntheticSource(profile, 0, seed=1)
        counts = {OP_LOAD: 0, OP_STORE: 0, OP_BRANCH: 0}
        n = 20_000
        for _ in range(n):
            uop = source.next_uop()
            if uop.opclass in counts:
                counts[uop.opclass] += 1
        assert counts[OP_LOAD] / n == pytest.approx(profile.load, abs=0.02)
        assert counts[OP_STORE] / n == pytest.approx(profile.store, abs=0.02)
        assert counts[OP_BRANCH] / n == pytest.approx(profile.branch, abs=0.02)

    def test_addresses_stay_in_thread_region(self):
        source = SyntheticSource(get_profile("mcf"), thread_id=1, seed=3)
        for _ in range(5000):
            uop = source.next_uop()
            if uop.address >= 0:
                assert (
                    THREAD_REGION_BYTES
                    <= uop.address
                    < 2 * THREAD_REGION_BYTES
                )

    def test_pcs_stay_in_code_footprint(self):
        profile = get_profile("gzip")
        source = SyntheticSource(profile, 0, seed=3)
        limit = source._code_base + profile.code_kb * 1024
        for _ in range(5000):
            assert source._code_base <= source.peek_pc() <= limit + 4096
            source.next_uop()

    def test_taken_branches_mostly_jump_backward_to_loop_head(self):
        """Loop-structured control flow: the overwhelming majority of taken
        branches return to the loop head; rare far jumps (new code regions)
        are allowed by design."""
        source = SyntheticSource(get_profile("gzip"), 0, seed=5)
        backward = forward = 0
        for _ in range(4000):
            pc = source.peek_pc()
            uop = source.next_uop()
            if uop.opclass == OP_BRANCH and uop.taken:
                if source.peek_pc() <= pc + 4:
                    backward += 1
                else:
                    forward += 1
        assert backward > 0
        assert forward <= 0.1 * (backward + forward)

    def test_prefill_warms_hot_set(self):
        from repro.memory import MemoryHierarchy

        hierarchy = MemoryHierarchy(MACHINE)
        source = SyntheticSource(get_profile("gzip"), 0, seed=1)
        source.prefill(hierarchy)
        assert hierarchy.l1d.occupancy > 0
        assert hierarchy.l2.occupancy > hierarchy.l1d.occupancy


class TestMaliciousKernels:
    def test_variant1_is_the_figure1_kernel(self):
        program = build_variant1(MACHINE, block_size=4)
        listing = program.listing()
        assert listing.count("addl") == 4
        assert "br L1" in listing

    def test_conflict_addresses_all_map_to_one_l2_set(self):
        addresses = conflict_addresses(MACHINE)
        assert len(addresses) == CONFLICT_WAYS == MACHINE.l2.assoc + 1
        l2 = Cache(MACHINE.l2)
        sets = {l2.set_index(a) for a in addresses}
        assert len(sets) == 1
        tags = {l2.tag(a) for a in addresses}
        assert len(tags) == CONFLICT_WAYS

    def test_conflict_addresses_also_collide_in_l1d(self):
        addresses = conflict_addresses(MACHINE)
        l1 = Cache(MACHINE.l1d)
        assert len({l1.set_index(a) for a in addresses}) == 1

    def test_variant2_has_two_phases(self):
        program = build_variant2(MACHINE, THERMAL)
        listing = program.listing()
        assert "P1:" in listing and "P2:" in listing
        assert listing.count("ldq") == CONFLICT_WAYS

    def test_variant2_phase_sizes_scale_with_time_scale(self):
        # At very low time scales the burst is sized by real time (more
        # cycles per ms); at high scales the indivisible miss-loop quantum
        # dominates and the burst is sized against it instead.
        slow = build_variant2(MACHINE, ThermalConfig(time_scale=200.0))
        fast = build_variant2(MACHINE, ThermalConfig(time_scale=4000.0))
        # Lower time scale -> more cycles per ms -> more burst iterations.
        def burst_iters(program):
            return program.at(program.label_address("start")).imm

        assert burst_iters(slow) > burst_iters(fast)

    def test_variant3_uses_dependent_chains(self):
        program = build_variant3(MACHINE, THERMAL)
        listing = program.listing()
        assert "addl $1, $1, $25" in listing

    def test_variant3_miss_phase_longer_than_variant2(self):
        v2 = build_variant2(MACHINE, THERMAL)
        v3 = build_variant3(MACHINE, THERMAL)

        def miss_iters(program):
            index = program.label_address("P2") - 1
            return program.at(index).imm

        # variant3 hides behind a lower average rate: relatively more
        # miss-phase iterations per burst iteration.
        def ratio(program):
            start = program.at(program.label_address("start")).imm
            return miss_iters(program) / start

        assert ratio(v3) > ratio(v2)

    def test_build_variant_dispatch(self):
        for name in MALICIOUS_VARIANTS:
            assert len(build_variant(name, MACHINE, THERMAL)) > 0
        with pytest.raises(WorkloadError):
            build_variant("variant9", MACHINE, THERMAL)

    def test_kernels_execute_forever(self):
        from repro.isa import ArchExecutor

        program = build_variant2(MACHINE, THERMAL)
        executor = ArchExecutor(program)
        for _ in range(10_000):
            executor.step()
        assert not executor.halted


class TestProgramSource:
    def test_loop_branches_train_to_near_perfect_prediction(self):
        source = ProgramSource(build_variant1(MACHINE), 0)
        for _ in range(20_000):
            source.next_uop()
        assert source.mispredicts / source.branches < 0.05

    def test_thread_relocation_preserves_conflict_sets(self):
        """Relocating a kernel to thread 1's region must not change which L2
        set its conflict loads hit."""
        l2 = Cache(MACHINE.l2)
        source = ProgramSource(build_variant2(MACHINE, THERMAL), thread_id=1)
        load_sets = set()
        for _ in range(50_000):
            uop = source.next_uop()
            if uop.opclass == OP_LOAD:
                load_sets.add(l2.set_index(uop.address))
        assert len(load_sets) == 1

    def test_peek_pc_matches_next_uop(self):
        source = ProgramSource(build_variant1(MACHINE), 0)
        for _ in range(100):
            pc = source.peek_pc()
            assert source.next_uop().pc == pc

    def test_halted_program_yields_none(self):
        from repro.isa import assemble

        source = ProgramSource(assemble("nop\nhalt"), 0)
        assert source.next_uop() is not None
        assert source.next_uop() is None
        assert source.peek_pc() == -1


class TestRegistry:
    def test_names_cover_spec_and_variants(self):
        names = workload_names()
        assert "gzip" in names and "variant2" in names
        assert len(names) == len(SPEC_PROFILES) + len(MALICIOUS_VARIANTS)

    def test_is_malicious(self):
        assert is_malicious("variant1") is True
        assert is_malicious("gzip") is False

    def test_make_source_types(self):
        synthetic = make_source("gzip", 0, MACHINE, THERMAL)
        program = make_source("variant2", 1, MACHINE, THERMAL)
        assert isinstance(synthetic, SyntheticSource)
        assert isinstance(program, ProgramSource)

    def test_make_source_unknown(self):
        with pytest.raises(WorkloadError):
            make_source("doom", 0, MACHINE, THERMAL)


class TestFpFlood:
    """Generality: the attack and defense are not integer-RF-specific."""

    def test_fp_flood_registered(self):
        assert "fp_flood" in MALICIOUS_VARIANTS
        assert is_malicious("fp_flood")

    def test_fp_flood_targets_fp_register_file(self):
        from repro.workloads import build_fp_flood

        program = build_fp_flood(MACHINE, block_size=8)
        listing = program.listing()
        assert "addt $f" in listing
        assert "addl" not in listing

    def test_fp_flood_heats_fp_rf_and_is_sedated(self):
        from repro.blocks import FP_RF
        from repro.config import scaled_config
        from repro.sim import Simulator

        config = scaled_config(time_scale=8000.0, quantum_cycles=20_000)
        sim = Simulator(
            config.with_policy("sedation"), workloads=["gcc", "fp_flood"]
        )
        result = sim.run()
        counts = sim.reports.sedation_counts_by_thread()
        assert counts.get(1, 0) >= 1
        assert counts.get(0, 0) == 0
        # The sedations happened at the FP register file.
        sedations = sim.reports.sedations()
        assert all(event.block == FP_RF for event in sedations)
