#!/usr/bin/env python3
"""Chaos smoke: drive the hardened batch runner through every failure shape.

One tiny campaign mixes healthy specs with a crashing spec, a hanging spec,
and a flaky-then-ok spec (all injected via
:class:`repro.faults.plan.WorkerFaultPlan`), runs it with
``raise_on_error=False`` against a cache pre-seeded with one corrupt entry,
and asserts the robustness contract of docs/robustness.md:

* failures are *reported* (index-aligned :class:`RunFailure` records with
  the right kinds), never raised;
* every healthy spec still returns its result — byte-identical to a clean
  serial run;
* the corrupt cache entry is quarantined, not silently overwritten;
* the flaky spec succeeds on retry.

Exit status 0 = contract holds.  Runs in a few seconds; CI executes it on
every push (the ``chaos`` job), and it is equally useful locally:

    python tools/chaos_smoke.py
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.config import scaled_config  # noqa: E402
from repro.faults import FaultPlan, WorkerFaultPlan  # noqa: E402
from repro.sim import RunFailure, RunSpec, run_many  # noqa: E402
from repro.sim.parallel import RUNNER_METRICS, spec_fingerprint  # noqa: E402


def main() -> int:
    config = scaled_config(time_scale=20_000.0, quantum_cycles=3_000)

    def chaos(workloads, **worker):
        return RunSpec(
            tuple(workloads),
            config.with_faults(FaultPlan(worker=WorkerFaultPlan(**worker))),
        )

    healthy_a = RunSpec(("gcc", "swim"), config)
    crash = chaos(("gzip", "mcf"), crash_attempts=10)
    hang = chaos(("vpr", "art"), hang_attempts=10, hang_seconds=30.0)
    flaky = chaos(("twolf", "lucas"), fail_attempts=1)
    healthy_b = RunSpec(("eon", "apsi"), config)
    batch = [healthy_a, crash, hang, flaky, healthy_b]

    with tempfile.TemporaryDirectory() as cache_dir:
        cache = Path(cache_dir)
        # Pre-seed one corrupt entry where healthy_a's result would land.
        corrupt_key = spec_fingerprint(healthy_a)
        (cache / f"{corrupt_key}.json").write_text("{not json")

        results = run_many(
            batch,
            jobs=2,
            cache_dir=cache,
            timeout=3.0,
            retries=1,
            raise_on_error=False,
        )

        failures = {i: r for i, r in enumerate(results)
                    if isinstance(r, RunFailure)}
        checks = [
            ("failed specs are exactly the crash and the hang",
             sorted(failures) == [1, 2]),
            ("crash reported, not raised",
             failures[1].kind in ("crash", "error") and not failures[1].ok),
            ("hang reported as a timeout", failures[2].kind == "timeout"),
            ("flaky spec recovered on retry",
             not isinstance(results[3], RunFailure)),
            ("every healthy spec returned a result",
             not isinstance(results[0], RunFailure)
             and not isinstance(results[4], RunFailure)),
            ("healthy results byte-identical to a clean serial run",
             results[0] == run_many([healthy_a], jobs=1, cache=False)[0]
             and results[4] == run_many([healthy_b], jobs=1, cache=False)[0]),
            ("corrupt entry quarantined, evidence preserved",
             (cache / "quarantine" / f"{corrupt_key}.json").read_text()
             == "{not json"),
            ("pool break recovered serially",
             RUNNER_METRICS.counters.get("runner.pool_breaks", 0) >= 1),
            ("retry accounted",
             RUNNER_METRICS.counters.get("runner.retries", 0) >= 1),
        ]

    width = max(len(label) for label, _ in checks)
    failed = 0
    for label, ok in checks:
        print(f"  {label:<{width}}  {'ok' if ok else 'FAIL'}")
        failed += 0 if ok else 1
    interesting = {
        name: value
        for name, value in sorted(RUNNER_METRICS.counters.items())
        if name.startswith(("runner.", "cache."))
    }
    print(f"runner metrics: {interesting}")
    if failed:
        print(f"chaos smoke: {failed} check(s) FAILED", file=sys.stderr)
        return 1
    print("chaos smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
