#!/usr/bin/env python3
"""Chaos smoke: drive the hardened batch runner through every failure shape.

One tiny campaign mixes healthy specs with a crashing spec, a hanging spec,
and a flaky-then-ok spec (all injected via
:class:`repro.faults.plan.WorkerFaultPlan`), runs it with
``raise_on_error=False`` against a cache pre-seeded with one corrupt entry,
and asserts the robustness contract of docs/robustness.md:

* failures are *reported* (index-aligned :class:`RunFailure` records with
  the right kinds), never raised;
* every healthy spec still returns its result — byte-identical to a clean
  serial run;
* the corrupt cache entry is quarantined, not silently overwritten;
* the flaky spec succeeds on retry.

A second scenario exercises the durable-campaign layer end to end
(docs/robustness.md): a child process drives a journaled campaign, the
parent SIGKILLs it mid-campaign (after at least two specs completed),
resumes the campaign via :func:`repro.sim.durable.resume_campaign` in its
own process, and asserts the merged result list is byte-identical
(canonical JSON, PerfCounters included) to an uninterrupted run of the
same campaign in a separate cache — with exactly one rollup covering the
full member set.

A third scenario repeats the kill-and-resume shape against the
**heterogeneous batch kernel**: the campaign's waves mix workload pairs
and seeds (two trajectory groups per wave), the child is SIGKILLed while
a wave rides the lock-step kernel, and the resume — which re-dispatches
the interrupted wave through the same kernel — must still produce results
byte-identical to an uninterrupted run.  Runner metrics confirm the
resumed lanes actually went through the batch tier, not a scalar
fallback.

Exit status 0 = contract holds.  Runs in a few seconds; CI executes it on
every push (the ``chaos`` job), and it is equally useful locally:

    python tools/chaos_smoke.py
"""

from __future__ import annotations

import dataclasses
import json
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.config import scaled_config  # noqa: E402
from repro.faults import FaultPlan, WorkerFaultPlan  # noqa: E402
from repro.sim import RunFailure, RunSpec, run_many  # noqa: E402
from repro.sim.parallel import RUNNER_METRICS, spec_fingerprint  # noqa: E402


def durable_specs() -> list[RunSpec]:
    """The kill-and-resume campaign: identical in parent and child.

    Slow enough (~0.2s per spec) that the parent can reliably SIGKILL the
    child mid-campaign, fast enough that the whole scenario stays within a
    smoke test's budget.
    """
    config = scaled_config(time_scale=8_000.0, quantum_cycles=12_000)
    mixes = [
        ("gcc", "swim"), ("gzip", "mcf"), ("vpr", "art"),
        ("twolf", "lucas"), ("eon", "apsi"), ("gcc", "gcc"),
    ]
    return [RunSpec(mix, config) for mix in mixes]


def durable_child(cache_dir: str) -> int:
    """Child mode: drive the campaign until killed (or done)."""
    from repro.sim.durable import run_durable

    run_durable(
        durable_specs(), cache_dir=cache_dir, jobs=1, wave_size=1,
        raise_on_error=False,
    )
    return 0


def _completed_records(journal_dir: Path) -> int:
    count = 0
    for path in journal_dir.glob("[0-9]*.json"):
        try:
            if '"type":"completed"' in path.read_text():
                count += 1
        except OSError:
            continue
    return count


def durable_checks() -> list[tuple[str, bool]]:
    """kill -9 mid-campaign -> resume -> byte-identical results."""
    from repro.sim.durable import (
        JOURNAL_DIR,
        derive_campaign_id,
        resume_campaign,
        results_to_canonical_json,
        run_durable,
    )

    specs = durable_specs()
    campaign = derive_campaign_id([spec_fingerprint(s) for s in specs])
    checks: list[tuple[str, bool]] = []
    with tempfile.TemporaryDirectory() as killed_dir, \
            tempfile.TemporaryDirectory() as clean_dir:
        child = subprocess.Popen(
            [sys.executable, __file__, "--durable-child", killed_dir],
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        journal_dir = Path(killed_dir) / JOURNAL_DIR / campaign
        deadline = time.monotonic() + 120.0
        completed = 0
        while time.monotonic() < deadline:
            completed = _completed_records(journal_dir)
            if completed >= 2 or child.poll() is not None:
                break
            time.sleep(0.02)
        killed_midway = child.poll() is None and 2 <= completed < len(specs)
        child.send_signal(signal.SIGKILL)
        child.wait()
        checks.append(
            ("child SIGKILLed mid-campaign (some specs done, not all)",
             killed_midway)
        )

        resumed = resume_campaign(
            campaign, cache_dir=killed_dir, jobs=1, raise_on_error=False
        )
        checks.append(
            ("resumed campaign finished every slot",
             not any(isinstance(r, RunFailure) for r in resumed))
        )

        clean = run_durable(
            specs, cache_dir=clean_dir, jobs=1, wave_size=1,
            raise_on_error=False,
        )
        checks.append(
            ("resumed results byte-identical to an uninterrupted run",
             results_to_canonical_json(resumed)
             == results_to_canonical_json(clean))
        )

        rollups = sorted((Path(killed_dir) / "rollups").glob("*.json"))
        members = set()
        if len(rollups) == 1:
            members = set(
                json.loads(rollups[0].read_text()).get("fingerprints", [])
            )
        checks.append(
            ("exactly one rollup covering the full member set",
             len(rollups) == 1
             and members == {spec_fingerprint(s) for s in specs})
        )
        checks.append(
            ("resume accounted in runner metrics",
             RUNNER_METRICS.counters.get("runner.campaign_resumes", 0) >= 1)
        )
    return checks


def het_durable_specs() -> list[RunSpec]:
    """The heterogeneous kill-and-resume campaign: mixed pairs and seeds.

    Eight specs over two trajectory groups — ``(gcc, swim)`` at the base
    seed and ``(gzip, mcf)`` at seed 99 — interleaved so every wave of
    four holds both trajectories and rides one heterogeneous kernel call.
    """
    base = scaled_config(time_scale=8_000.0, quantum_cycles=12_000)
    reseeded = dataclasses.replace(base, seed=99)
    specs = []
    for policy in ("ideal", "stop_and_go", "dvfs", "sedation"):
        specs.append(RunSpec(("gcc", "swim"), base.with_policy(policy)))
        specs.append(RunSpec(("gzip", "mcf"), reseeded.with_policy(policy)))
    return specs


def het_durable_child(cache_dir: str) -> int:
    """Child mode: drive the heterogeneous campaign until killed."""
    from repro.sim.durable import run_durable

    run_durable(
        het_durable_specs(), cache_dir=cache_dir, jobs=1, wave_size=4,
        raise_on_error=False,
    )
    return 0


def het_durable_checks() -> list[tuple[str, bool]]:
    """SIGKILL during a heterogeneous batch wave -> resume -> identity."""
    from repro.sim.durable import (
        JOURNAL_DIR,
        derive_campaign_id,
        resume_campaign,
        results_to_canonical_json,
        run_durable,
    )

    specs = het_durable_specs()
    campaign = derive_campaign_id([spec_fingerprint(s) for s in specs])
    checks: list[tuple[str, bool]] = []
    with tempfile.TemporaryDirectory() as killed_dir, \
            tempfile.TemporaryDirectory() as clean_dir:
        child = subprocess.Popen(
            [sys.executable, __file__, "--het-durable-child", killed_dir],
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        journal_dir = Path(killed_dir) / JOURNAL_DIR / campaign
        deadline = time.monotonic() + 120.0
        completed = 0
        while time.monotonic() < deadline:
            completed = _completed_records(journal_dir)
            if completed >= 2 or child.poll() is not None:
                break
            time.sleep(0.02)
        killed_midway = child.poll() is None and 2 <= completed < len(specs)
        child.send_signal(signal.SIGKILL)
        child.wait()
        checks.append(
            ("child SIGKILLed during a heterogeneous batch wave",
             killed_midway)
        )

        before = dict(RUNNER_METRICS.counters)
        resumed = resume_campaign(
            campaign, cache_dir=killed_dir, jobs=1, raise_on_error=False
        )
        lanes = (RUNNER_METRICS.counters.get("runner.batch_lanes", 0)
                 - before.get("runner.batch_lanes", 0))
        trajectories = (
            RUNNER_METRICS.counters.get("runner.batch_trajectories", 0)
            - before.get("runner.batch_trajectories", 0)
        )
        checks.append(
            ("heterogeneous resume finished every slot",
             not any(isinstance(r, RunFailure) for r in resumed))
        )
        checks.append(
            ("resume rode the heterogeneous batch kernel",
             lanes >= 4 and trajectories >= 2)
        )

        clean = run_durable(
            specs, cache_dir=clean_dir, jobs=1, wave_size=4,
            raise_on_error=False,
        )
        checks.append(
            ("heterogeneous resume byte-identical to an uninterrupted run",
             results_to_canonical_json(resumed)
             == results_to_canonical_json(clean))
        )
    return checks


def main() -> int:
    config = scaled_config(time_scale=20_000.0, quantum_cycles=3_000)

    def chaos(workloads, **worker):
        return RunSpec(
            tuple(workloads),
            config.with_faults(FaultPlan(worker=WorkerFaultPlan(**worker))),
        )

    healthy_a = RunSpec(("gcc", "swim"), config)
    crash = chaos(("gzip", "mcf"), crash_attempts=10)
    hang = chaos(("vpr", "art"), hang_attempts=10, hang_seconds=30.0)
    flaky = chaos(("twolf", "lucas"), fail_attempts=1)
    healthy_b = RunSpec(("eon", "apsi"), config)
    batch = [healthy_a, crash, hang, flaky, healthy_b]

    with tempfile.TemporaryDirectory() as cache_dir:
        cache = Path(cache_dir)
        # Pre-seed one corrupt entry where healthy_a's result would land.
        corrupt_key = spec_fingerprint(healthy_a)
        (cache / f"{corrupt_key}.json").write_text("{not json")

        results = run_many(
            batch,
            jobs=2,
            cache_dir=cache,
            timeout=3.0,
            retries=1,
            raise_on_error=False,
        )

        failures = {i: r for i, r in enumerate(results)
                    if isinstance(r, RunFailure)}
        checks = [
            ("failed specs are exactly the crash and the hang",
             sorted(failures) == [1, 2]),
            ("crash reported, not raised",
             failures[1].kind in ("crash", "error") and not failures[1].ok),
            ("hang reported as a timeout", failures[2].kind == "timeout"),
            ("flaky spec recovered on retry",
             not isinstance(results[3], RunFailure)),
            ("every healthy spec returned a result",
             not isinstance(results[0], RunFailure)
             and not isinstance(results[4], RunFailure)),
            ("healthy results byte-identical to a clean serial run",
             results[0] == run_many([healthy_a], jobs=1, cache=False)[0]
             and results[4] == run_many([healthy_b], jobs=1, cache=False)[0]),
            ("corrupt entry quarantined, evidence preserved",
             (cache / "quarantine" / f"{corrupt_key}.json").read_text()
             == "{not json"),
            ("pool break recovered serially",
             RUNNER_METRICS.counters.get("runner.pool_breaks", 0) >= 1),
            ("retry accounted",
             RUNNER_METRICS.counters.get("runner.retries", 0) >= 1),
        ]

    checks.extend(durable_checks())
    checks.extend(het_durable_checks())

    width = max(len(label) for label, _ in checks)
    failed = 0
    for label, ok in checks:
        print(f"  {label:<{width}}  {'ok' if ok else 'FAIL'}")
        failed += 0 if ok else 1
    interesting = {
        name: value
        for name, value in sorted(RUNNER_METRICS.counters.items())
        if name.startswith(("runner.", "cache."))
    }
    print(f"runner metrics: {interesting}")
    if failed:
        print(f"chaos smoke: {failed} check(s) FAILED", file=sys.stderr)
        return 1
    print("chaos smoke: all checks passed")
    return 0


if __name__ == "__main__":
    if len(sys.argv) == 3 and sys.argv[1] == "--durable-child":
        sys.exit(durable_child(sys.argv[2]))
    if len(sys.argv) == 3 and sys.argv[1] == "--het-durable-child":
        sys.exit(het_durable_child(sys.argv[2]))
    sys.exit(main())
