#!/usr/bin/env python3
"""Internal-link checker for the repo's markdown.

Validates every inline markdown link (``[text](target)``) whose target is
*internal* — a relative path, optionally with a ``#fragment``:

* the target file (or directory) must exist, resolved relative to the
  markdown file containing the link;
* a ``#heading-anchor`` into a markdown file must match a heading in that
  file, using GitHub's slug rules (lowercased, punctuation stripped, spaces
  to hyphens, ``-N`` suffixes for duplicates);
* a ``#L<n>`` line anchor into a source file must not point past the end
  of the file.

External links (``http(s)://``, ``mailto:``) are deliberately ignored —
CI must not depend on the network.  Exit status is the number of dead
links (0 = clean), so it slots straight into a CI step:

    python tools/check_links.py            # default file set
    python tools/check_links.py docs/*.md  # explicit files
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Checked when no files are given on the command line.
DEFAULT_FILES = (
    "README.md",
    "DESIGN.md",
    "EXPERIMENTS.md",
    "ROADMAP.md",
    "docs/architecture.md",
    "docs/cli.md",
    "docs/paper_map.md",
    "docs/linting.md",
    "docs/robustness.md",
    "docs/performance.md",
    "docs/telemetry.md",
)

# Inline links; [text](target "title") and [text](target).  Images share
# the syntax (leading !) and are validated the same way.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$")
_LINE_ANCHOR = re.compile(r"^L(\d+)(?:-L?\d+)?$")
_EXTERNAL = ("http://", "https://", "mailto:")


def github_slugs(markdown: str) -> set[str]:
    """The set of heading anchors GitHub would generate for a document."""
    slugs: set[str] = set()
    counts: dict[str, int] = {}
    in_fence = False
    for line in markdown.splitlines():
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = _HEADING.match(line)
        if not match:
            continue
        text = match.group(1).strip()
        # Strip inline code/link markup before slugging.
        text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)
        text = text.replace("`", "")
        slug = re.sub(r"[^\w\- ]", "", text.lower()).replace(" ", "-")
        seen = counts.get(slug, 0)
        counts[slug] = seen + 1
        slugs.add(slug if seen == 0 else f"{slug}-{seen}")
    return slugs


def iter_links(markdown: str):
    """Yield (lineno, target) for every inline link, skipping code fences."""
    in_fence = False
    for lineno, line in enumerate(markdown.splitlines(), start=1):
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        # Drop inline code spans so `[x](y)` inside backticks is not a link.
        stripped = re.sub(r"`[^`]*`", "", line)
        for match in _LINK.finditer(stripped):
            yield lineno, match.group(1)


def check_file(path: Path) -> list[str]:
    """Return one error string per dead link in one markdown file."""
    errors: list[str] = []
    try:
        markdown = path.read_text()
    except OSError as error:
        return [f"{path}: unreadable ({error})"]
    for lineno, target in iter_links(markdown):
        if target.startswith(_EXTERNAL):
            continue
        try:
            shown = path.relative_to(REPO_ROOT)
        except ValueError:
            shown = path
        where = f"{shown}:{lineno}"
        raw_path, _, fragment = target.partition("#")
        if raw_path:
            dest = (path.parent / raw_path).resolve()
        else:
            dest = path.resolve()  # '#anchor' — same document
        if not dest.exists():
            errors.append(f"{where}: missing target {target!r}")
            continue
        if not fragment:
            continue
        line_anchor = _LINE_ANCHOR.match(fragment)
        if line_anchor:
            wanted = int(line_anchor.group(1))
            if dest.is_dir():
                errors.append(f"{where}: line anchor into directory {target!r}")
                continue
            total = len(dest.read_text().splitlines())
            if wanted > total:
                errors.append(
                    f"{where}: {target!r} points past end of file "
                    f"({wanted} > {total} lines)"
                )
        elif dest.suffix == ".md":
            if fragment.lower() not in github_slugs(dest.read_text()):
                errors.append(f"{where}: no heading anchor {target!r}")
        # Fragments into non-markdown files that are not line anchors are
        # viewer-specific; leave them alone.
    return errors


def main(argv: list[str]) -> int:
    if argv:
        files = [Path(arg).resolve() for arg in argv]
    else:
        files = [REPO_ROOT / name for name in DEFAULT_FILES]
    errors: list[str] = []
    checked = 0
    for path in files:
        if not path.exists():
            errors.append(f"{path}: file not found")
            continue
        checked += 1
        errors.extend(check_file(path))
    for error in errors:
        print(error, file=sys.stderr)
    print(f"checked {checked} file(s): {len(errors)} dead link(s)")
    return min(len(errors), 125)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
