#!/usr/bin/env python3
"""Repo entry point for the static analyzer (``tools/lint.py [paths...]``).

Equivalent to ``PYTHONPATH=src python -m repro.lint``; exists so the lint
can be run from a clean checkout without exporting PYTHONPATH, matching
how ``tools/check_links.py`` is invoked in CI.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.lint.cli import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
