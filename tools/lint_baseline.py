#!/usr/bin/env python3
"""Maintain the checked-in repro.lint baseline (tools/lint_baseline.json).

The baseline lets new lint rules gate CI on *regressions* immediately
while the findings that existed when a rule landed burn down over time
(see ``repro/lint/baseline.py`` for matching semantics).

    python tools/lint_baseline.py --update   # refresh from a clean run
    python tools/lint_baseline.py --check    # report stale entries

``--update`` is deterministic: entries are sorted and the JSON layout is
stable, so re-running it on an unchanged tree is a no-op diff.  ``--check``
exits non-zero when entries no longer match any finding — prune them with
``--update`` so the ratchet only ever tightens.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.lint.baseline import Baseline  # noqa: E402
from repro.lint.engine import LintConfig, run_lint  # noqa: E402

DEFAULT_BASELINE = REPO_ROOT / "tools" / "lint_baseline.json"
DEFAULT_PATHS = [str(REPO_ROOT / "src")]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "paths", nargs="*", default=DEFAULT_PATHS,
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--baseline", default=str(DEFAULT_BASELINE), metavar="FILE",
        help="baseline file to update/check (default: tools/lint_baseline.json)",
    )
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument(
        "--update", action="store_true",
        help="rewrite the baseline from a fresh lint run",
    )
    mode.add_argument(
        "--check", action="store_true",
        help="fail if any baseline entry no longer matches a finding",
    )
    args = parser.parse_args(argv)

    result = run_lint(args.paths, LintConfig())
    # Relativize so baselines are stable across checkouts.
    findings = [_relativized(f) for f in result.findings]

    if args.update:
        baseline = Baseline.from_findings(findings)
        baseline.write(args.baseline)
        print(
            f"wrote {len(baseline.entries)} entr"
            + ("y" if len(baseline.entries) == 1 else "ies")
            + f" to {args.baseline}"
        )
        return 0

    baseline = Baseline.load(args.baseline)
    survivors, absorbed = baseline.apply(findings)
    stale = baseline.stale_entries()
    for entry in stale:
        print(
            f"stale: {entry.path}: {entry.code} {entry.message} "
            f"(matched {entry.matched} of {entry.count})"
        )
    if survivors:
        print(f"{len(survivors)} finding(s) not covered by the baseline:")
        for finding in survivors:
            print(f"  {finding.render()}")
    print(
        f"{absorbed} baselined, {len(stale)} stale entr"
        + ("y" if len(stale) == 1 else "ies")
        + f", {len(survivors)} new"
    )
    return 1 if stale or survivors else 0


def _relativized(finding):
    try:
        rel = Path(finding.path).resolve().relative_to(REPO_ROOT)
    except ValueError:
        return finding
    return type(finding)(
        rel.as_posix(), finding.line, finding.col, finding.code,
        finding.message,
    )


if __name__ == "__main__":
    raise SystemExit(main())
